package enclave

import (
	"bytes"
	"errors"
	"testing"
)

// TestKVReplaceFailureKeepsOldValue is the regression test for the
// replace-path data loss: Put used to free and delete the old value
// before attempting the new allocation, so a replace failing under EPC
// pressure silently dropped the key.
func TestKVReplaceFailureKeepsOldValue(t *testing.T) {
	p, _ := newTestPlatform(t)
	e := p.LaunchWithEPC(uaIdentity, 2)
	kv := e.KV()

	old := []byte("pending-response")
	if err := kv.Put("h", old); err != nil {
		t.Fatal(err)
	}
	// The replacement needs 3 pages against a 2-page budget: it must
	// fail — and the original value must survive the failure.
	if err := kv.Put("h", make([]byte, 3*PageSize)); !errors.Is(err, ErrEPCExhausted) {
		t.Fatalf("oversized replace: err=%v, want ErrEPCExhausted", err)
	}
	got, ok := kv.Get("h")
	if !ok {
		t.Fatal("failed replace dropped the existing key")
	}
	if !bytes.Equal(got, old) {
		t.Fatalf("value after failed replace = %q, want %q", got, old)
	}
	if used, _ := e.EPCUsage(); used != 1 {
		t.Fatalf("EPC used = %d pages after failed replace, want 1", used)
	}
}

// TestKVReplaceChargesDelta checks that replacing a value charges only
// the page difference, both growing and shrinking.
func TestKVReplaceChargesDelta(t *testing.T) {
	p, _ := newTestPlatform(t)
	e := p.LaunchWithEPC(uaIdentity, 4)
	kv := e.KV()

	if err := kv.Put("h", make([]byte, PageSize/2)); err != nil { // 1 page
		t.Fatal(err)
	}
	if err := kv.Put("h", make([]byte, 3*PageSize)); err != nil { // grow to 4
		t.Fatalf("grow within budget: %v", err)
	}
	if used, _ := e.EPCUsage(); used != 4 {
		t.Fatalf("EPC used = %d after grow, want 4", used)
	}
	if err := kv.Put("h", []byte("small")); err != nil { // shrink to 1
		t.Fatal(err)
	}
	if used, _ := e.EPCUsage(); used != 1 {
		t.Fatalf("EPC used = %d after shrink, want 1", used)
	}
	// A same-size replace under a full budget must also succeed: the
	// delta is zero even though a fresh charge would not fit.
	if err := kv.Put("fill", make([]byte, 2*PageSize)); err != nil {
		t.Fatal(err)
	}
	if err := kv.Put("fill", make([]byte, 2*PageSize+1)); err != nil {
		t.Fatalf("same-page-count replace at full budget: %v", err)
	}
}

func TestKVDeleteReturnsFreedPages(t *testing.T) {
	p, _ := newTestPlatform(t)
	e := p.Launch(uaIdentity)
	kv := e.KV()

	if err := kv.Put("a", make([]byte, 2*PageSize)); err != nil {
		t.Fatal(err)
	}
	if n := kv.Delete("a"); n != 3 { // key + 2 pages of value, rounded up
		t.Fatalf("Delete freed %d pages, want 3", n)
	}
	if n := kv.Delete("a"); n != 0 {
		t.Fatalf("Delete of absent key freed %d pages, want 0", n)
	}
	if used, _ := e.EPCUsage(); used != 0 {
		t.Fatalf("EPC used = %d after delete, want 0", used)
	}
}

func TestKVFlushBulkRelease(t *testing.T) {
	p, _ := newTestPlatform(t)
	e := p.Launch(uaIdentity)
	kv := e.KV()

	want := 0
	for _, k := range []string{"a", "b", "c"} {
		if err := kv.Put(k, make([]byte, PageSize)); err != nil {
			t.Fatal(err)
		}
		want += pagesFor(len(k) + PageSize)
	}
	if n := kv.Flush(); n != want {
		t.Fatalf("Flush freed %d pages, want %d", n, want)
	}
	if kv.Len() != 0 {
		t.Fatalf("Len = %d after Flush, want 0", kv.Len())
	}
	if used, _ := e.EPCUsage(); used != 0 {
		t.Fatalf("EPC used = %d after Flush, want 0", used)
	}
	// Flushing an empty store is a no-op.
	if n := kv.Flush(); n != 0 {
		t.Fatalf("Flush of empty store freed %d pages", n)
	}
	// The store is still usable after a flush.
	if err := kv.Put("d", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, ok := kv.Get("d"); !ok || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("Get after Flush = (%q, %v)", v, ok)
	}
}

func TestEnclaveChargeReleasePages(t *testing.T) {
	p, _ := newTestPlatform(t)
	e := p.LaunchWithEPC(uaIdentity, 4)

	if err := e.ChargePages(3); err != nil {
		t.Fatal(err)
	}
	if used, _ := e.EPCUsage(); used != 3 {
		t.Fatalf("EPC used = %d, want 3", used)
	}
	if err := e.ChargePages(2); !errors.Is(err, ErrEPCExhausted) {
		t.Fatalf("over-budget charge: err=%v, want ErrEPCExhausted", err)
	}
	e.ReleasePages(3)
	if used, _ := e.EPCUsage(); used != 0 {
		t.Fatalf("EPC used = %d after release, want 0", used)
	}
	// Cache charges and KV charges draw on the same budget.
	if err := e.ChargePages(3); err != nil {
		t.Fatal(err)
	}
	if err := e.KV().Put("k", make([]byte, 2*PageSize)); !errors.Is(err, ErrEPCExhausted) {
		t.Fatalf("KV put with cache pressure: err=%v, want ErrEPCExhausted", err)
	}
}
