package enclave

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

func newBatchEnclave(t *testing.T) *Enclave {
	t.Helper()
	p, as := newTestPlatform(t)
	e := p.Launch(uaIdentity)
	e.Register("upper", func(s Secrets, kv *KV, in []byte) ([]byte, error) {
		if bytes.Equal(in, []byte("boom")) {
			return nil, errors.New("handler refused")
		}
		return bytes.ToUpper(in), nil
	})
	if err := AttestAndProvision(as, e, Measure(uaIdentity), map[string][]byte{"k": []byte("v")}); err != nil {
		t.Fatalf("provision: %v", err)
	}
	return e
}

// TestCallBatchOneCrossingManyMessages is the batching contract: N
// messages cost ONE enclave crossing (EcallCount) while the message
// counter advances by N.
func TestCallBatchOneCrossingManyMessages(t *testing.T) {
	e := newBatchEnclave(t)
	ins := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	outs, errs, err := e.CallBatch("upper", ins)
	if err != nil {
		t.Fatalf("CallBatch: %v", err)
	}
	if len(outs) != 3 || len(errs) != 3 {
		t.Fatalf("outs=%d errs=%d, want 3 each", len(outs), len(errs))
	}
	for i, want := range []string{"A", "B", "C"} {
		if errs[i] != nil || string(outs[i]) != want {
			t.Errorf("entry %d: out=%q err=%v, want %q", i, outs[i], errs[i], want)
		}
	}
	if got := e.EcallCount(); got != 1 {
		t.Errorf("EcallCount = %d, want 1 (one crossing)", got)
	}
	if got := e.MessageCount(); got != 3 {
		t.Errorf("MessageCount = %d, want 3", got)
	}

	// A per-message Ecall advances both counters by one.
	if _, err := e.Ecall("upper", []byte("d")); err != nil {
		t.Fatalf("Ecall: %v", err)
	}
	if got := e.EcallCount(); got != 2 {
		t.Errorf("EcallCount after Ecall = %d, want 2", got)
	}
	if got := e.MessageCount(); got != 4 {
		t.Errorf("MessageCount after Ecall = %d, want 4", got)
	}
}

// TestCallBatchPerMessageErrors: one poisoned message fails alone; its
// batch-mates still process in the same crossing.
func TestCallBatchPerMessageErrors(t *testing.T) {
	e := newBatchEnclave(t)
	outs, errs, err := e.CallBatch("upper", [][]byte{[]byte("ok"), []byte("boom"), []byte("ok2")})
	if err != nil {
		t.Fatalf("CallBatch: %v", err)
	}
	if errs[0] != nil || errs[2] != nil {
		t.Errorf("healthy entries failed: %v / %v", errs[0], errs[2])
	}
	if errs[1] == nil {
		t.Error("poisoned entry: err = nil, want the handler's error")
	}
	if string(outs[0]) != "OK" || string(outs[2]) != "OK2" {
		t.Errorf("outs = %q, %q", outs[0], outs[2])
	}
	if got := e.EcallCount(); got != 1 {
		t.Errorf("EcallCount = %d, want 1", got)
	}
}

// TestCallBatchEPCAccounting: the crossing charges EPC for the whole
// marshalled batch and releases it afterwards; a batch larger than the
// EPC fails as a crossing (ErrEPCExhausted), counting nothing.
func TestCallBatchEPCAccounting(t *testing.T) {
	p, as := newTestPlatform(t)
	e := p.LaunchWithEPC(uaIdentity, 4) // 4 pages = 16 KiB
	var observedUsed int
	e.Register("probe", func(s Secrets, kv *KV, in []byte) ([]byte, error) {
		used, _ := e.EPCUsage()
		observedUsed = used
		return in, nil
	})
	if err := AttestAndProvision(as, e, Measure(uaIdentity), map[string][]byte{"k": []byte("v")}); err != nil {
		t.Fatalf("provision: %v", err)
	}

	baseline, _ := e.EPCUsage() // provisioned secrets hold resident pages

	// 2 messages × 4 KiB = 2 pages charged during the crossing.
	ins := [][]byte{make([]byte, PageSize), make([]byte, PageSize)}
	if _, _, err := e.CallBatch("probe", ins); err != nil {
		t.Fatalf("CallBatch: %v", err)
	}
	if observedUsed < baseline+2 {
		t.Errorf("EPC pages used during crossing = %d, want ≥ %d", observedUsed, baseline+2)
	}
	if used, _ := e.EPCUsage(); used != baseline {
		t.Errorf("EPC pages used after crossing = %d, want %d (released)", used, baseline)
	}

	// 5 pages of input cannot fit a 4-page EPC: crossing-level failure.
	big := [][]byte{make([]byte, 5*PageSize)}
	_, _, err := e.CallBatch("probe", big)
	if !errors.Is(err, ErrEPCExhausted) {
		t.Fatalf("oversized batch: err = %v, want ErrEPCExhausted", err)
	}
	if got := e.EcallCount(); got != 1 {
		t.Errorf("EcallCount = %d, want 1 (failed crossing uncounted)", got)
	}
}

// TestCallBatchObservers: the legacy ECALL observer sees ONE event per
// crossing and the batch observer sees the message count, so dashboards
// can compute the amortization ratio.
func TestCallBatchObservers(t *testing.T) {
	e := newBatchEnclave(t)
	var legacy, batchEvents, batchN int
	e.SetEcallObserver(func(name string, d time.Duration, err error) { legacy++ })
	e.SetBatchObserver(func(name string, n int, d time.Duration) {
		batchEvents++
		batchN = n
		if name != "upper" {
			t.Errorf("batch observer name = %q", name)
		}
	})
	ins := make([][]byte, 7)
	for i := range ins {
		ins[i] = []byte(fmt.Sprintf("m%d", i))
	}
	if _, _, err := e.CallBatch("upper", ins); err != nil {
		t.Fatalf("CallBatch: %v", err)
	}
	if legacy != 1 {
		t.Errorf("legacy observer events = %d, want 1", legacy)
	}
	if batchEvents != 1 || batchN != 7 {
		t.Errorf("batch observer: events=%d n=%d, want 1/7", batchEvents, batchN)
	}
}

// TestCallBatchGuards: unknown entry points and unprovisioned enclaves
// fail the whole crossing, and the empty batch is a no-op.
func TestCallBatchGuards(t *testing.T) {
	p, as := newTestPlatform(t)
	e := p.Launch(uaIdentity)
	e.Register("noop", func(s Secrets, kv *KV, in []byte) ([]byte, error) { return in, nil })
	if _, _, err := e.CallBatch("noop", [][]byte{[]byte("x")}); !errors.Is(err, ErrNotProvisioned) {
		t.Errorf("unprovisioned: err = %v, want ErrNotProvisioned", err)
	}
	if err := AttestAndProvision(as, e, Measure(uaIdentity), map[string][]byte{"k": []byte("v")}); err != nil {
		t.Fatalf("provision: %v", err)
	}
	if _, _, err := e.CallBatch("nope", [][]byte{[]byte("x")}); !errors.Is(err, ErrUnknownEcall) {
		t.Errorf("unknown entry point: err = %v, want ErrUnknownEcall", err)
	}
	outs, errs, err := e.CallBatch("noop", nil)
	if outs != nil || errs != nil || err != nil {
		t.Errorf("empty batch: %v %v %v, want all nil", outs, errs, err)
	}
	if got := e.EcallCount(); got != 0 {
		t.Errorf("EcallCount = %d, want 0", got)
	}
}

// TestTransitionCostPaidPerCrossing: the modeled world-switch cost is
// charged once per crossing — N per-message ECALLs pay it N times, one
// batched crossing carrying N messages pays it once — and zero (the
// default) keeps crossings free.
func TestTransitionCostPaidPerCrossing(t *testing.T) {
	e := newBatchEnclave(t)
	const cost = 2 * time.Millisecond
	e.SetTransitionCost(cost)

	start := time.Now()
	if _, err := e.Ecall("upper", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < cost {
		t.Errorf("Ecall crossing took %v, want ≥ %v", d, cost)
	}

	ins := [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d")}
	start = time.Now()
	if _, _, err := e.CallBatch("upper", ins); err != nil {
		t.Fatal(err)
	}
	d := time.Since(start)
	if d < cost {
		t.Errorf("batched crossing took %v, want ≥ %v", d, cost)
	}
	if d >= time.Duration(len(ins))*cost {
		t.Errorf("batched crossing took %v: cost charged per message, want once per crossing", d)
	}

	e.SetTransitionCost(0)
	start = time.Now()
	if _, err := e.Ecall("upper", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d >= cost {
		t.Errorf("free crossing took %v after reset", d)
	}
}
