package enclave

import (
	"bytes"
	"errors"
	"testing"
)

func TestSecureProvisionEndToEnd(t *testing.T) {
	p, as := newTestPlatform(t)
	e := p.Launch(uaIdentity)
	e.Register("read", func(s Secrets, kv *KV, in []byte) ([]byte, error) {
		v, _ := s.Get("k")
		return v, nil
	})

	secrets := map[string][]byte{"k": []byte("layer-key-bytes")}
	if err := SecureAttestAndProvision(as, e, Measure(uaIdentity), secrets); err != nil {
		t.Fatalf("SecureAttestAndProvision: %v", err)
	}
	out, err := e.Ecall("read", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, []byte("layer-key-bytes")) {
		t.Error("provisioned secret not visible inside the enclave")
	}
}

func TestSecureProvisionPayloadIsEncrypted(t *testing.T) {
	p, as := newTestPlatform(t)
	e := p.Launch(uaIdentity)
	nonce := []byte("nonce-0123456789")
	offer, err := e.BeginSecureProvision(nonce)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("super-secret-permanent-key-bytes")
	sealed, err := SealSecretsFor(as, offer, Measure(uaIdentity), nonce, map[string][]byte{"k": secret})
	if err != nil {
		t.Fatal(err)
	}
	// The wire payload must not contain the secret (or its base64) in
	// the clear.
	if bytes.Contains(sealed.Ciphertext, secret) {
		t.Error("secret bytes visible on the provisioning wire")
	}
}

func TestSecureProvisionRejectsWrongMeasurement(t *testing.T) {
	p, as := newTestPlatform(t)
	imposter := p.Launch(CodeIdentity{Name: "imposter", Version: "1.0"})
	err := SecureAttestAndProvision(as, imposter, Measure(uaIdentity), map[string][]byte{"k": []byte("v")})
	if !errors.Is(err, ErrChannelBinding) {
		t.Fatalf("err = %v, want ErrChannelBinding", err)
	}
	if imposter.Provisioned() {
		t.Error("imposter received secrets")
	}
}

func TestSecureProvisionRejectsKeySubstitution(t *testing.T) {
	// A machine in the middle intercepts the offer and substitutes its
	// own key-exchange key, hoping to decrypt the sealed secrets. The
	// quote does not cover the substituted key, so sealing must fail.
	p, as := newTestPlatform(t)
	e := p.Launch(uaIdentity)
	nonce := []byte("nonce-0123456789")
	offer, err := e.BeginSecureProvision(nonce)
	if err != nil {
		t.Fatal(err)
	}

	evil := p.Launch(uaIdentity) // attacker-controlled enclave-shaped process
	evilOffer, err := evil.BeginSecureProvision(nonce)
	if err != nil {
		t.Fatal(err)
	}
	tampered := &ProvisioningOffer{Quote: offer.Quote, KEMPub: evilOffer.KEMPub}
	if _, err := SealSecretsFor(as, tampered, Measure(uaIdentity), nonce, map[string][]byte{"k": []byte("v")}); !errors.Is(err, ErrChannelBinding) {
		t.Fatalf("key substitution accepted: err = %v", err)
	}
}

func TestSecureProvisionRejectsReplayedSealedPayload(t *testing.T) {
	p, as := newTestPlatform(t)
	e := p.Launch(uaIdentity)
	nonce := []byte("nonce-0123456789")
	offer, err := e.BeginSecureProvision(nonce)
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := SealSecretsFor(as, offer, Measure(uaIdentity), nonce, map[string][]byte{"k": []byte("v")})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CompleteSecureProvision(nonce, sealed); err != nil {
		t.Fatal(err)
	}
	// The ephemeral key is single-use: replaying the sealed payload
	// fails.
	if err := e.CompleteSecureProvision(nonce, sealed); !errors.Is(err, ErrChannelBinding) {
		t.Fatalf("replay accepted: err = %v", err)
	}
}

func TestSecureProvisionRejectsTamperedCiphertext(t *testing.T) {
	p, as := newTestPlatform(t)
	e := p.Launch(uaIdentity)
	nonce := []byte("nonce-0123456789")
	offer, err := e.BeginSecureProvision(nonce)
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := SealSecretsFor(as, offer, Measure(uaIdentity), nonce, map[string][]byte{"k": []byte("v")})
	if err != nil {
		t.Fatal(err)
	}
	sealed.Ciphertext[0] ^= 0xFF
	if err := e.CompleteSecureProvision(nonce, sealed); !errors.Is(err, ErrChannelBinding) {
		t.Fatalf("tampered payload accepted: err = %v", err)
	}
	if e.Provisioned() {
		t.Error("enclave provisioned from tampered payload")
	}
}
