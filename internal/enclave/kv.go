package enclave

import (
	"fmt"
	"sync"
)

// KV is the in-enclave key-value store described in §5: "An in-memory
// key-value store in the EPC (Enclave Page Cache) holds the information
// necessary for handling requests responses on their way back from the
// LRS." Its memory is charged against the owning enclave's EPC budget, so
// a deployment that buffers too much pending-response state hits
// ErrEPCExhausted exactly as it would on real hardware.
type KV struct {
	owner *Enclave

	mu    sync.Mutex
	data  map[string][]byte
	pages map[string]int
}

func newKV(owner *Enclave) *KV {
	return &KV{
		owner: owner,
		data:  make(map[string][]byte),
		pages: make(map[string]int),
	}
}

// Put stores a value, charging EPC pages for it. Replacing a key charges
// only the page delta, and charges it *before* touching the old value: a
// replace that fails under EPC pressure leaves the existing entry intact
// instead of silently dropping it.
func (kv *KV) Put(key string, value []byte) error {
	need := pagesFor(len(key) + len(value))

	kv.mu.Lock()
	defer kv.mu.Unlock()
	old := kv.pages[key] // 0 when absent
	if need > old {
		if err := kv.owner.alloc(need - old); err != nil {
			return fmt.Errorf("kv put %q: %w", key, err)
		}
	} else if old > need {
		kv.owner.free(old - need)
	}
	kv.data[key] = append([]byte(nil), value...)
	kv.pages[key] = need
	return nil
}

// Get returns a copy of the stored value.
func (kv *KV) Get(key string) ([]byte, bool) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	v, ok := kv.data[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Take returns the stored value and removes it, releasing its EPC charge.
// It is the common pattern for pending-response state: stored when the
// request passes through, consumed exactly once on the way back.
func (kv *KV) Take(key string) ([]byte, bool) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	v, ok := kv.data[key]
	if !ok {
		return nil, false
	}
	kv.owner.free(kv.pages[key])
	delete(kv.data, key)
	delete(kv.pages, key)
	return v, true
}

// Delete removes a key and returns the EPC pages it releases. Deleting an
// absent key is a no-op returning 0.
func (kv *KV) Delete(key string) int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	p, ok := kv.pages[key]
	if !ok {
		return 0
	}
	kv.owner.free(p)
	delete(kv.data, key)
	delete(kv.pages, key)
	return p
}

// Flush removes every entry in one bulk release and returns the total EPC
// pages freed. Key rotation and cache teardown use it instead of per-key
// Delete loops.
func (kv *KV) Flush() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	total := 0
	for _, p := range kv.pages {
		total += p
	}
	kv.owner.free(total)
	kv.data = make(map[string][]byte)
	kv.pages = make(map[string]int)
	return total
}

// Len returns the number of stored entries.
func (kv *KV) Len() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return len(kv.data)
}
