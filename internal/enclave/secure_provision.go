package enclave

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// secure_provision.go implements the full remote-attestation provisioning
// channel. Real SGX provisioning never hands secrets to an attested
// enclave in the clear: the enclave generates an ephemeral key-exchange
// key *inside*, the quote binds that public key (it rides in the quote's
// user data), the remote verifier checks quote and binding, and the
// secrets travel encrypted under the derived session key. A machine in
// the middle relaying the handshake cannot substitute its own public key
// without breaking the quote MAC, and cannot read the provisioned secrets
// off the wire.
//
// AttestAndProvision (enclave.go) remains as the in-process short cut
// used by tests that do not exercise the channel; deployments use
// SecureProvision.

// ErrChannelBinding reports a provisioning handshake whose quote does not
// bind the offered key-exchange key.
var ErrChannelBinding = errors.New("enclave: provisioning channel binding failed")

// ProvisioningOffer is the enclave's half of the handshake: a quote over
// (nonce ‖ ephemeral public key).
type ProvisioningOffer struct {
	Quote  Quote
	KEMPub []byte // ECDH X25519 public key generated inside the enclave
}

// BeginSecureProvision runs inside the enclave runtime: it draws an
// ephemeral X25519 key, stores the private half in enclave memory, and
// emits a quote binding the public half to the verifier's nonce.
func (e *Enclave) BeginSecureProvision(nonce []byte) (*ProvisioningOffer, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("enclave: ephemeral key: %w", err)
	}
	e.mu.Lock()
	e.kemPriv = priv
	e.mu.Unlock()

	pub := priv.PublicKey().Bytes()
	q := e.platform.attestation.quote(e.meas, quoteUserData(nonce, pub))
	return &ProvisioningOffer{Quote: q, KEMPub: pub}, nil
}

// quoteUserData binds the nonce and the enclave's key-exchange key into
// the quoted report data.
func quoteUserData(nonce, kemPub []byte) []byte {
	h := sha256.New()
	h.Write(nonce)
	h.Write(kemPub)
	return h.Sum(nil)
}

// SealedSecrets is the encrypted provisioning payload.
type SealedSecrets struct {
	ProvisionerPub []byte // provisioner's ephemeral X25519 public key
	Nonce          []byte // AES-GCM nonce
	Ciphertext     []byte // AES-GCM over the JSON-encoded secret map
}

// SealSecretsFor runs at the provisioner (the RaaS client application):
// after verifying the offer against the expected measurement and its own
// nonce, it derives a session key and seals the secrets.
func SealSecretsFor(as *AttestationService, offer *ProvisioningOffer, want Measurement, nonce []byte, secrets map[string][]byte) (*SealedSecrets, error) {
	if err := as.Verify(offer.Quote, want, quoteUserData(nonce, offer.KEMPub)); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrChannelBinding, err)
	}
	remote, err := ecdh.X25519().NewPublicKey(offer.KEMPub)
	if err != nil {
		return nil, fmt.Errorf("enclave: offered key: %w", err)
	}
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("enclave: provisioner key: %w", err)
	}
	shared, err := priv.ECDH(remote)
	if err != nil {
		return nil, fmt.Errorf("enclave: ECDH: %w", err)
	}
	aead, err := sessionAEAD(shared, nonce)
	if err != nil {
		return nil, err
	}

	plaintext, err := json.Marshal(secretsToWire(secrets))
	if err != nil {
		return nil, fmt.Errorf("enclave: encode secrets: %w", err)
	}
	gcmNonce := make([]byte, aead.NonceSize())
	if _, err := io.ReadFull(rand.Reader, gcmNonce); err != nil {
		return nil, fmt.Errorf("enclave: GCM nonce: %w", err)
	}
	ct := aead.Seal(nil, gcmNonce, plaintext, offer.KEMPub)
	return &SealedSecrets{
		ProvisionerPub: priv.PublicKey().Bytes(),
		Nonce:          gcmNonce,
		Ciphertext:     ct,
	}, nil
}

// CompleteSecureProvision runs inside the enclave: it derives the same
// session key from its parked ephemeral private key, opens the sealed
// payload, and installs the secrets.
func (e *Enclave) CompleteSecureProvision(verifierNonce []byte, sealed *SealedSecrets) error {
	e.mu.Lock()
	priv := e.kemPriv
	e.kemPriv = nil // single use
	e.mu.Unlock()
	if priv == nil {
		return fmt.Errorf("%w: no provisioning in progress", ErrChannelBinding)
	}
	remote, err := ecdh.X25519().NewPublicKey(sealed.ProvisionerPub)
	if err != nil {
		return fmt.Errorf("enclave: provisioner key: %w", err)
	}
	shared, err := priv.ECDH(remote)
	if err != nil {
		return fmt.Errorf("enclave: ECDH: %w", err)
	}
	aead, err := sessionAEAD(shared, verifierNonce)
	if err != nil {
		return err
	}
	plaintext, err := aead.Open(nil, sealed.Nonce, sealed.Ciphertext, priv.PublicKey().Bytes())
	if err != nil {
		return fmt.Errorf("%w: payload rejected", ErrChannelBinding)
	}
	var wire map[string][]byte
	if err := json.Unmarshal(plaintext, &wire); err != nil {
		return fmt.Errorf("enclave: decode secrets: %w", err)
	}
	return e.Provision(wire)
}

// sessionAEAD derives the provisioning session key: HMAC-SHA-256 of the
// ECDH shared secret keyed by the handshake nonce, feeding AES-256-GCM.
func sessionAEAD(shared, nonce []byte) (cipher.AEAD, error) {
	mac := hmac.New(sha256.New, nonce)
	mac.Write(shared)
	key := mac.Sum(nil)
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("enclave: session cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("enclave: session AEAD: %w", err)
	}
	return aead, nil
}

func secretsToWire(secrets map[string][]byte) map[string][]byte {
	cp := make(map[string][]byte, len(secrets))
	for k, v := range secrets {
		cp[k] = v
	}
	return cp
}

// SecureAttestAndProvision drives the whole handshake end to end:
// challenge, offer, verification, sealing, installation.
func SecureAttestAndProvision(as *AttestationService, e *Enclave, want Measurement, secrets map[string][]byte) error {
	nonce := make([]byte, 16)
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return fmt.Errorf("enclave: nonce: %w", err)
	}
	offer, err := e.BeginSecureProvision(nonce)
	if err != nil {
		return err
	}
	sealed, err := SealSecretsFor(as, offer, want, nonce, secrets)
	if err != nil {
		return err
	}
	return e.CompleteSecureProvision(nonce, sealed)
}
