package enclave

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

func newTestPlatform(t *testing.T) (*Platform, *AttestationService) {
	t.Helper()
	as, err := NewAttestationService()
	if err != nil {
		t.Fatalf("NewAttestationService: %v", err)
	}
	return NewPlatform(as), as
}

var uaIdentity = CodeIdentity{Name: "pprox-ua", Version: "1.0"}

func TestMeasureIsStableAndDistinct(t *testing.T) {
	a := Measure(uaIdentity)
	b := Measure(uaIdentity)
	if a != b {
		t.Error("measurement of the same identity differs")
	}
	c := Measure(CodeIdentity{Name: "pprox-ia", Version: "1.0"})
	if a == c {
		t.Error("distinct identities share a measurement")
	}
	d := Measure(CodeIdentity{Name: "pprox-ua", Version: "1.1"})
	if a == d {
		t.Error("distinct versions share a measurement")
	}
}

func TestAttestAndProvision(t *testing.T) {
	p, as := newTestPlatform(t)
	e := p.Launch(uaIdentity)
	secrets := map[string][]byte{"skUA": []byte("private"), "kUA": []byte("permanent")}

	if e.Provisioned() {
		t.Fatal("enclave reports provisioned before provisioning")
	}
	if err := AttestAndProvision(as, e, Measure(uaIdentity), secrets); err != nil {
		t.Fatalf("AttestAndProvision: %v", err)
	}
	if !e.Provisioned() {
		t.Error("enclave not provisioned after successful handshake")
	}
}

func TestAttestationRejectsWrongMeasurement(t *testing.T) {
	p, as := newTestPlatform(t)
	e := p.Launch(CodeIdentity{Name: "malicious", Version: "1.0"})
	err := AttestAndProvision(as, e, Measure(uaIdentity), map[string][]byte{"k": []byte("v")})
	if !errors.Is(err, ErrQuoteInvalid) {
		t.Fatalf("provisioning to a wrong-measurement enclave: err=%v, want ErrQuoteInvalid", err)
	}
	if e.Provisioned() {
		t.Error("wrong-measurement enclave received secrets")
	}
}

func TestAttestationRejectsForeignTrustAnchor(t *testing.T) {
	// A quote signed by a different attestation service (a fake platform)
	// must not verify.
	_, asGood := newTestPlatform(t)
	pBad, _ := newTestPlatform(t)
	e := pBad.Launch(uaIdentity)
	nonce := []byte("nonce-123")
	q := e.Quote(nonce)
	if err := asGood.Verify(q, Measure(uaIdentity), nonce); !errors.Is(err, ErrQuoteInvalid) {
		t.Fatalf("foreign quote verified: err=%v", err)
	}
}

func TestAttestationRejectsNonceReplay(t *testing.T) {
	p, as := newTestPlatform(t)
	e := p.Launch(uaIdentity)
	q := e.Quote([]byte("old-nonce"))
	if err := as.Verify(q, Measure(uaIdentity), []byte("fresh-nonce")); !errors.Is(err, ErrQuoteInvalid) {
		t.Fatalf("replayed quote verified: err=%v", err)
	}
}

func TestEcallRequiresProvisioning(t *testing.T) {
	p, _ := newTestPlatform(t)
	e := p.Launch(uaIdentity)
	e.Register("noop", func(s Secrets, kv *KV, in []byte) ([]byte, error) { return in, nil })
	if _, err := e.Ecall("noop", nil); !errors.Is(err, ErrNotProvisioned) {
		t.Fatalf("Ecall before provisioning: err=%v, want ErrNotProvisioned", err)
	}
}

func TestEcallUnknownEntryPoint(t *testing.T) {
	p, as := newTestPlatform(t)
	e := p.Launch(uaIdentity)
	if err := AttestAndProvision(as, e, Measure(uaIdentity), map[string][]byte{"k": []byte("v")}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ecall("missing", nil); !errors.Is(err, ErrUnknownEcall) {
		t.Fatalf("unknown ECALL: err=%v, want ErrUnknownEcall", err)
	}
}

func TestEcallSeesSecretsAndCountsCalls(t *testing.T) {
	p, as := newTestPlatform(t)
	e := p.Launch(uaIdentity)
	e.Register("echo-secret", func(s Secrets, kv *KV, in []byte) ([]byte, error) {
		v, ok := s.Get("kUA")
		if !ok {
			return nil, errors.New("secret missing")
		}
		return v, nil
	})
	if err := AttestAndProvision(as, e, Measure(uaIdentity), map[string][]byte{"kUA": []byte("key-bytes")}); err != nil {
		t.Fatal(err)
	}
	out, err := e.Ecall("echo-secret", nil)
	if err != nil {
		t.Fatalf("Ecall: %v", err)
	}
	if !bytes.Equal(out, []byte("key-bytes")) {
		t.Errorf("handler saw %q, want provisioned secret", out)
	}
	if got := e.EcallCount(); got != 1 {
		t.Errorf("EcallCount = %d, want 1", got)
	}
}

func TestProvisionCopiesSecrets(t *testing.T) {
	p, as := newTestPlatform(t)
	e := p.Launch(uaIdentity)
	raw := []byte("mutable")
	if err := AttestAndProvision(as, e, Measure(uaIdentity), map[string][]byte{"k": raw}); err != nil {
		t.Fatal(err)
	}
	raw[0] = 'X' // the provisioner's buffer must not alias enclave memory
	e.Register("read", func(s Secrets, kv *KV, in []byte) ([]byte, error) {
		v, _ := s.Get("k")
		return v, nil
	})
	out, err := e.Ecall("read", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, []byte("mutable")) {
		t.Errorf("enclave secret aliased caller memory: %q", out)
	}
}

func TestCompromiseLeaksSecretsAndIsDetected(t *testing.T) {
	p, as := newTestPlatform(t)
	fired := make(chan *Enclave, 1)
	det := NewBreachDetector(time.Millisecond, func(e *Enclave) { fired <- e })
	defer det.Stop()
	p.SetBreachDetector(det)

	e := p.Launch(uaIdentity)
	want := map[string][]byte{"skUA": []byte("priv"), "kUA": []byte("perm")}
	if err := AttestAndProvision(as, e, Measure(uaIdentity), want); err != nil {
		t.Fatal(err)
	}

	loot := e.Compromise()
	if !bytes.Equal(loot["skUA"], want["skUA"]) || !bytes.Equal(loot["kUA"], want["kUA"]) {
		t.Error("compromise did not leak provisioned secrets")
	}
	if !e.Compromised() {
		t.Error("enclave not marked compromised")
	}

	select {
	case breached := <-fired:
		if breached.ID() != e.ID() {
			t.Errorf("countermeasure fired for %q, want %q", breached.ID(), e.ID())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("breach detector never fired")
	}
	if ids := det.Detections(); len(ids) != 1 || ids[0] != e.ID() {
		t.Errorf("Detections() = %v", ids)
	}
}

func TestBreachDetectorDeduplicates(t *testing.T) {
	p, as := newTestPlatform(t)
	var mu sync.Mutex
	count := 0
	det := NewBreachDetector(time.Millisecond, func(*Enclave) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	defer det.Stop()
	p.SetBreachDetector(det)

	e := p.Launch(uaIdentity)
	if err := AttestAndProvision(as, e, Measure(uaIdentity), map[string][]byte{"k": []byte("v")}); err != nil {
		t.Fatal(err)
	}
	e.Compromise()
	e.Compromise()
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if count != 1 {
		t.Errorf("countermeasure fired %d times, want 1", count)
	}
}

func TestEPCAccounting(t *testing.T) {
	p, as := newTestPlatform(t)
	e := p.LaunchWithEPC(uaIdentity, 4) // 4 pages = 16 KiB
	if err := AttestAndProvision(as, e, Measure(uaIdentity), map[string][]byte{"k": make([]byte, PageSize)}); err != nil {
		t.Fatal(err)
	}
	used, total := e.EPCUsage()
	if used != 1 || total != 4 {
		t.Fatalf("EPCUsage = (%d,%d), want (1,4)", used, total)
	}

	kv := e.KV()
	if err := kv.Put("resp-1", make([]byte, 2*PageSize)); err != nil {
		t.Fatalf("Put within budget: %v", err)
	}
	if err := kv.Put("resp-2", make([]byte, 2*PageSize)); !errors.Is(err, ErrEPCExhausted) {
		t.Fatalf("Put beyond budget: err=%v, want ErrEPCExhausted", err)
	}
	kv.Delete("resp-1")
	if err := kv.Put("resp-2", make([]byte, 2*PageSize)); err != nil {
		t.Fatalf("Put after freeing: %v", err)
	}
}

func TestEPCExhaustedAtProvisioning(t *testing.T) {
	p, as := newTestPlatform(t)
	e := p.LaunchWithEPC(uaIdentity, 1)
	err := AttestAndProvision(as, e, Measure(uaIdentity), map[string][]byte{"big": make([]byte, 3*PageSize)})
	if !errors.Is(err, ErrEPCExhausted) {
		t.Fatalf("oversized provisioning: err=%v, want ErrEPCExhausted", err)
	}
}

func TestKVSemantics(t *testing.T) {
	p, _ := newTestPlatform(t)
	e := p.Launch(uaIdentity)
	kv := e.KV()

	if err := kv.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if v, ok := kv.Get("a"); !ok || !bytes.Equal(v, []byte("1")) {
		t.Errorf("Get after Put = (%q,%v)", v, ok)
	}
	// Get returns a copy.
	v, _ := kv.Get("a")
	v[0] = 'X'
	if w, _ := kv.Get("a"); !bytes.Equal(w, []byte("1")) {
		t.Error("Get exposed internal storage")
	}
	// Replace releases the old charge and stores the new value.
	if err := kv.Put("a", []byte("22")); err != nil {
		t.Fatal(err)
	}
	if w, _ := kv.Get("a"); !bytes.Equal(w, []byte("22")) {
		t.Error("Put did not replace value")
	}
	// Take consumes exactly once.
	if w, ok := kv.Take("a"); !ok || !bytes.Equal(w, []byte("22")) {
		t.Errorf("Take = (%q,%v)", w, ok)
	}
	if _, ok := kv.Take("a"); ok {
		t.Error("second Take returned a value")
	}
	if kv.Len() != 0 {
		t.Errorf("Len = %d after Take, want 0", kv.Len())
	}
	used, _ := e.EPCUsage()
	if used != 0 {
		t.Errorf("EPC pages still charged after Take: %d", used)
	}
}

func TestKVConcurrentAccess(t *testing.T) {
	p, _ := newTestPlatform(t)
	e := p.Launch(uaIdentity)
	kv := e.KV()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			key := string(rune('a' + n))
			for j := 0; j < 100; j++ {
				if err := kv.Put(key, []byte{byte(j)}); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				kv.Get(key)
				kv.Take(key)
			}
		}(i)
	}
	wg.Wait()
	if kv.Len() != 0 {
		t.Errorf("Len = %d, want 0", kv.Len())
	}
}

func TestLaunchAssignsUniqueIDs(t *testing.T) {
	p, _ := newTestPlatform(t)
	a := p.Launch(uaIdentity)
	b := p.Launch(uaIdentity)
	if a.ID() == b.ID() {
		t.Error("two enclaves share an ID")
	}
	if len(p.Enclaves()) != 2 {
		t.Errorf("platform tracks %d enclaves, want 2", len(p.Enclaves()))
	}
}
