package sim

import "time"

// Calibration constants for the simulated testbed. Each anchors to a
// number the paper reports; everything else (queueing, saturation knees,
// shuffle delays) emerges from the simulation.
//
//   - Direct injector→nginx requests have 1–2 ms median latency (§8.1).
//   - The cost of encryption is "slightly higher" than the cost of SGX,
//     which adds "2 to 5 ms" (§8.1.1, Fig. 6).
//   - One UA+IA instance pair sustains 250 RPS on 2-core nodes and an
//     extra pair buys another 250 RPS (§8.1.2, Fig. 8) — so the busiest
//     node's per-request CPU must sit a little under 2 cores / 250 RPS.
//   - Harness with 3 front-ends serves 250 RPS and saturates at 500;
//     each 3 more front-ends buy 250 RPS (§8.2, Fig. 9); service times
//     are below 100 ms up to 500 RPS with peaks near 300 ms at 1000 RPS.
const (
	// netHop is the one-way network latency between nodes in the
	// cluster (intra-datacenter).
	netHop = 200 * time.Microsecond

	// stubService is the nginx stub's service time (1–2 ms measured
	// directly, §8.1).
	stubService = 1500 * time.Microsecond

	// parseCost is the per-direction cost of accepting, parsing, and
	// re-emitting a request on a proxy node with no crypto (config m1).
	parseCost = 1200 * time.Microsecond

	// uaCryptoReq is the UA request-path crypto: RSA-OAEP decryption of
	// the user identifier plus deterministic pseudonymization.
	uaCryptoReq = 1600 * time.Microsecond

	// iaCryptoReq is the IA request-path crypto: RSA-OAEP decryption of
	// the temporary key (or item) plus KV bookkeeping.
	iaCryptoReq = 1200 * time.Microsecond

	// iaCryptoResp is the IA response-path crypto: de-pseudonymizing up
	// to 20 item identifiers and re-encrypting the padded list under
	// the temporary key.
	iaCryptoResp = 2200 * time.Microsecond

	// itemPseudoCost is the increment of item pseudonymization (m4
	// toggles it off; Fig. 6 shows the impact is negligible).
	itemPseudoCost = 100 * time.Microsecond

	// sgxEcall is the enclave-transition and in-enclave overhead per
	// ECALL; three ECALLs per get request make SGX add 2–5 ms of the
	// round trip (Fig. 6, m2 vs m3).
	sgxEcall = 700 * time.Microsecond

	// proxyCV is the coefficient of variation of proxy service times.
	proxyCV = 0.35

	// proxyCores matches the 2-core NUCs.
	proxyCores = 2

	// Harness model: front-end query CPU dominates (§8.2: "The
	// front-end service is the main source of load"), with an
	// Elasticsearch tier shared by every configuration and a fixed
	// model-read base latency.
	// A front-end sustains ~100 queries/s on its 2 cores, so 3 of them
	// serve 250 RPS at ~0.83 utilization and collapse at 500 — the b1
	// knee of Fig. 9. High service-time variability (complex reads
	// against a shared database, §8.2) widens the distribution as load
	// grows, producing the ~300 ms peaks at 1000 RPS.
	harnessFECost  = 20 * time.Millisecond
	harnessESCost  = 4 * time.Millisecond
	harnessESNodes = 3
	harnessBase    = 12 * time.Millisecond
	harnessCV      = 1.0

	// shuffleTimeout bounds the wait of a partially filled buffer.
	shuffleTimeout = 500 * time.Millisecond
)
