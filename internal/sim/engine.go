// Package sim is a deterministic discrete-event simulator of the paper's
// 27-node testbed (§8): 2-core SGX NUC nodes, the two proxy layers with
// shuffle buffers, kube-proxy round-robin balancing, the nginx stub, and
// the Harness deployment. It regenerates the latency distributions of
// Figures 6–10 with the published shapes.
//
// Substitution note (DESIGN.md §1): the physical cluster is unavailable,
// so per-operation CPU costs are calibrated constants (calibration.go)
// chosen to reproduce the paper's reported anchors — who wins, by what
// factor, and where the saturation knees fall — while all queueing,
// buffering, and scheduling behaviour emerges from the simulation itself.
package sim

import (
	"container/heap"
	"time"
)

// Engine is a single-threaded discrete-event scheduler with a virtual
// clock. It is deterministic: the same seedable model produces identical
// results on every run.
type Engine struct {
	now    time.Duration
	queue  eventHeap
	nextID uint64
}

// NewEngine creates a simulator at virtual time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// After schedules fn to run d from now (d < 0 runs immediately).
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.nextID++
	heap.Push(&e.queue, &event{at: e.now + d, seq: e.nextID, fn: fn})
}

// Run executes events until the queue drains or the virtual clock passes
// `until`. It returns the final virtual time.
func (e *Engine) Run(until time.Duration) time.Duration {
	for e.queue.Len() > 0 {
		ev := e.queue[0]
		if ev.at > until {
			break
		}
		heap.Pop(&e.queue)
		e.now = ev.at
		ev.fn()
	}
	if e.now < until {
		e.now = until
	}
	return e.now
}

type event struct {
	at  time.Duration
	seq uint64 // FIFO tie-break keeps the simulation deterministic
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return popped
}
