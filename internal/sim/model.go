package sim

import (
	"math"
	"math/rand"
	"time"
)

// Node models one machine with a fixed number of cores processing CPU
// demands FIFO — the 2-core NUCs of the paper's cluster. Work beyond core
// capacity queues, which is what produces the saturation knees of
// Figures 6–10.
type Node struct {
	eng   *Engine
	cores int
	busy  int
	queue []job
}

type job struct {
	cpu  time.Duration
	done func()
}

// NewNode creates a node with the given core count.
func NewNode(eng *Engine, cores int) *Node {
	return &Node{eng: eng, cores: cores}
}

// Submit requests cpu time on the node; done runs when the work
// completes.
func (n *Node) Submit(cpu time.Duration, done func()) {
	if n.busy < n.cores {
		n.busy++
		n.run(job{cpu: cpu, done: done})
		return
	}
	n.queue = append(n.queue, job{cpu: cpu, done: done})
}

func (n *Node) run(j job) {
	n.eng.After(j.cpu, func() {
		j.done()
		if len(n.queue) > 0 {
			next := n.queue[0]
			n.queue = n.queue[1:]
			n.run(next)
			return
		}
		n.busy--
	})
}

// Shuffler models the proxy's shuffle buffer in virtual time: messages
// buffer until S are pending or the flush timer expires, then release
// together (the randomized order within a batch does not change
// latencies, only wire order, so the latency model releases the whole
// batch at the flush instant).
type Shuffler struct {
	eng      *Engine
	size     int
	timeout  time.Duration
	pending  []func()
	timerSet bool
	epoch    int
}

// NewShuffler creates a virtual-time shuffle buffer; size ≤ 1 disables
// buffering.
func NewShuffler(eng *Engine, size int, timeout time.Duration) *Shuffler {
	if timeout <= 0 {
		timeout = 500 * time.Millisecond
	}
	return &Shuffler{eng: eng, size: size, timeout: timeout}
}

// Add buffers a message; done runs at its release instant.
func (s *Shuffler) Add(done func()) {
	if s == nil || s.size <= 1 {
		done()
		return
	}
	s.pending = append(s.pending, done)
	if len(s.pending) >= s.size {
		s.flush()
		return
	}
	if !s.timerSet {
		s.timerSet = true
		epoch := s.epoch
		s.eng.After(s.timeout, func() {
			if s.epoch == epoch && len(s.pending) > 0 {
				s.flush()
			}
		})
	}
}

func (s *Shuffler) flush() {
	batch := s.pending
	s.pending = nil
	s.timerSet = false
	s.epoch++
	for _, done := range batch {
		done()
	}
}

// RoundRobin selects instances the way kube-proxy's virtual service IPs
// do.
type RoundRobin struct {
	n    int
	next int
}

// NewRoundRobin creates a selector over n instances.
func NewRoundRobin(n int) *RoundRobin { return &RoundRobin{n: n} }

// Next returns the next instance index.
func (r *RoundRobin) Next() int {
	i := r.next % r.n
	r.next++
	return i
}

// ServiceTime draws randomized CPU demands around a mean, giving the
// M/G/c-style spread that widens latency distributions near saturation.
// The distribution is a two-point mix approximating a lognormal with
// moderate coefficient of variation.
type ServiceTime struct {
	rng  *rand.Rand
	mean time.Duration
	// cv is the coefficient of variation; 0 yields deterministic times.
	cv float64
}

// NewServiceTime creates a sampler.
func NewServiceTime(rng *rand.Rand, mean time.Duration, cv float64) *ServiceTime {
	return &ServiceTime{rng: rng, mean: mean, cv: cv}
}

// Sample draws one service time (never below 10% of the mean).
func (s *ServiceTime) Sample() time.Duration {
	if s.cv <= 0 {
		return s.mean
	}
	// Lognormal parameterized to the requested mean and cv.
	sigma2 := math.Log1p(s.cv * s.cv)
	mu := -0.5 * sigma2
	f := math.Exp(s.rng.NormFloat64()*math.Sqrt(sigma2) + mu)
	d := time.Duration(float64(s.mean) * f)
	if floor := s.mean / 10; d < floor {
		d = floor
	}
	return d
}
