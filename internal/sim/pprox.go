package sim

import (
	"math/rand"
	"time"

	"pprox/internal/cluster"
	"pprox/internal/stats"
)

// System is one simulated deployment: optional proxy layers in front of a
// stub or Harness LRS, mirroring the in-process cluster package but in
// virtual time.
type System struct {
	eng *Engine
	rng *rand.Rand

	proxy          bool
	encryption     bool
	sgx            bool
	itemPseudonyms bool

	uaNodes []*Node
	iaNodes []*Node
	uaRR    *RoundRobin
	iaRR    *RoundRobin
	uaShuf  []*Shuffler
	iaShuf  []*Shuffler

	useStub bool
	feNodes []*Node
	feRR    *RoundRobin
	esNodes []*Node
	esRR    *RoundRobin

	uaReq, uaResp *ServiceTime
	iaReq, iaResp *ServiceTime
	iaRespPost    *ServiceTime
	fe, es        *ServiceTime

	// postFraction of injected requests take the post path (footnote 9:
	// posts behave like gets with marginally lower latencies, because
	// the IA response leg does no list re-encryption).
	postFraction float64

	recorder *stats.Recorder
	measure  func(t0 time.Duration) bool
}

// SystemSpec selects the simulated deployment.
type SystemSpec struct {
	Proxy          bool
	UA, IA         int
	Encryption     bool
	SGX            bool
	ItemPseudonyms bool
	Shuffle        int
	UseStub        bool
	LRSFrontends   int
	Seed           int64
	// PostFraction injects this share of requests as post (feedback)
	// calls instead of gets; the evaluation reports gets (§8 footnote
	// 9), so the default 0 matches the figures.
	PostFraction float64
}

// FromMicro maps a Table 2 row onto a simulated deployment (stub LRS).
func FromMicro(c cluster.MicroConfig) SystemSpec {
	return SystemSpec{
		Proxy: true, UA: c.UA, IA: c.IA,
		Encryption: c.Encryption, SGX: c.SGX, ItemPseudonyms: c.ItemPseudonyms,
		Shuffle: c.Shuffle, UseStub: true, Seed: 1,
	}
}

// FromMacro maps a Table 3 row onto a simulated deployment (Harness LRS).
func FromMacro(c cluster.MacroConfig) SystemSpec {
	return SystemSpec{
		Proxy: c.Proxy, UA: c.UA, IA: c.IA,
		Encryption: c.Proxy, SGX: c.Proxy, ItemPseudonyms: c.Proxy,
		Shuffle: c.Shuffle, LRSFrontends: c.LRSFrontends, Seed: 1,
	}
}

// NewSystem builds the simulated deployment.
func NewSystem(spec SystemSpec) *System {
	eng := NewEngine()
	rng := rand.New(rand.NewSource(spec.Seed))
	s := &System{
		eng: eng, rng: rng,
		proxy: spec.Proxy, encryption: spec.Encryption, sgx: spec.SGX,
		itemPseudonyms: spec.ItemPseudonyms,
		useStub:        spec.UseStub,
		recorder:       stats.NewRecorder(0),
	}

	if spec.Proxy {
		s.uaRR = NewRoundRobin(spec.UA)
		s.iaRR = NewRoundRobin(spec.IA)
		for i := 0; i < spec.UA; i++ {
			s.uaNodes = append(s.uaNodes, NewNode(eng, proxyCores))
			s.uaShuf = append(s.uaShuf, NewShuffler(eng, spec.Shuffle, shuffleTimeout))
		}
		for i := 0; i < spec.IA; i++ {
			s.iaNodes = append(s.iaNodes, NewNode(eng, proxyCores))
			s.iaShuf = append(s.iaShuf, NewShuffler(eng, spec.Shuffle, shuffleTimeout))
		}
	}

	if !spec.UseStub {
		fe := spec.LRSFrontends
		if fe <= 0 {
			fe = 1
		}
		s.feRR = NewRoundRobin(fe)
		for i := 0; i < fe; i++ {
			s.feNodes = append(s.feNodes, NewNode(eng, proxyCores))
		}
		s.esRR = NewRoundRobin(harnessESNodes)
		for i := 0; i < harnessESNodes; i++ {
			s.esNodes = append(s.esNodes, NewNode(eng, proxyCores))
		}
	}

	// Per-operation service-time samplers, per the calibration.
	uaReq, uaResp, iaReq, iaResp := s.proxyCosts()
	s.uaReq = NewServiceTime(rng, uaReq, proxyCV)
	s.uaResp = NewServiceTime(rng, uaResp, proxyCV)
	s.iaReq = NewServiceTime(rng, iaReq, proxyCV)
	s.iaResp = NewServiceTime(rng, iaResp, proxyCV)
	// A post's response is a bare status code: the IA relays it without
	// de-pseudonymization or re-encryption (Fig. 3 vs Fig. 4).
	s.iaRespPost = NewServiceTime(rng, parseCost, proxyCV)
	s.fe = NewServiceTime(rng, harnessFECost, harnessCV)
	s.es = NewServiceTime(rng, harnessESCost, harnessCV)
	s.postFraction = spec.PostFraction
	return s
}

// proxyCosts derives per-node per-direction CPU demands from the
// configuration's feature set — this is where Table 2's Enc/SGX/★ columns
// become cost.
func (s *System) proxyCosts() (uaReq, uaResp, iaReq, iaResp time.Duration) {
	uaReq, uaResp, iaReq, iaResp = parseCost, parseCost, parseCost, parseCost
	if s.encryption {
		uaReq += uaCryptoReq
		iaReq += iaCryptoReq
		iaResp += iaCryptoResp
		if s.itemPseudonyms {
			iaReq += itemPseudoCost
			iaResp += itemPseudoCost
		}
		if s.sgx {
			uaReq += sgxEcall
			iaReq += sgxEcall
			iaResp += sgxEcall
		}
	}
	return uaReq, uaResp, iaReq, iaResp
}

// inject schedules one get request at virtual time t.
func (s *System) inject(t time.Duration) {
	s.eng.After(t-s.eng.Now(), func() {
		t0 := s.eng.Now()
		record := func() {
			if s.measure == nil || s.measure(t0) {
				s.recorder.Observe(s.eng.Now() - t0)
			}
		}
		isPost := s.postFraction > 0 && s.rng.Float64() < s.postFraction
		if s.proxy {
			s.viaProxy(isPost, record)
			return
		}
		s.hop(func() { s.lrs(func() { s.hop(record) }) })
	})
}

// viaProxy walks the full Fig. 3/Fig. 4 path: client → UA (process,
// shuffle) → IA (process) → LRS → IA (process, shuffle) → UA (relay) →
// client. Posts differ from gets only on the IA response leg.
func (s *System) viaProxy(isPost bool, done func()) {
	ua := s.uaRR.Next()
	ia := s.iaRR.Next()
	iaRespCost := s.iaResp
	if isPost {
		iaRespCost = s.iaRespPost
	}
	s.hop(func() {
		s.uaNodes[ua].Submit(s.uaReq.Sample(), func() {
			s.uaShuf[ua].Add(func() {
				s.hop(func() {
					s.iaNodes[ia].Submit(s.iaReq.Sample(), func() {
						s.hop(func() {
							s.lrs(func() {
								s.hop(func() {
									s.iaNodes[ia].Submit(iaRespCost.Sample(), func() {
										s.iaShuf[ia].Add(func() {
											s.hop(func() {
												s.uaNodes[ua].Submit(s.uaResp.Sample(), func() {
													s.hop(done)
												})
											})
										})
									})
								})
							})
						})
					})
				})
			})
		})
	})
}

// lrs models the backend: the fixed-latency nginx stub, or the Harness
// pipeline (front-end CPU → Elasticsearch CPU → model-read base delay).
func (s *System) lrs(done func()) {
	if s.useStub {
		s.eng.After(stubService, done)
		return
	}
	fe := s.feRR.Next()
	es := s.esRR.Next()
	s.feNodes[fe].Submit(s.fe.Sample(), func() {
		s.esNodes[es].Submit(s.es.Sample(), func() {
			s.eng.After(harnessBase, done)
		})
	})
}

func (s *System) hop(done func()) { s.eng.After(netHop, done) }

// Run drives an open-loop arrival process at the given rate for the given
// virtual duration, trimming a warm-up and cool-down window, and returns
// the round-trip latency distribution.
func (s *System) Run(rps int, duration, trim time.Duration) stats.Distribution {
	interval := time.Duration(float64(time.Second) / float64(rps))
	lo, hi := trim, duration-trim
	s.measure = func(t0 time.Duration) bool { return t0 >= lo && t0 <= hi }
	for t := time.Duration(0); t < duration; t += interval {
		s.inject(t)
	}
	// Let in-flight requests complete: run beyond the injection window.
	s.eng.Run(duration + 30*time.Second)
	return s.recorder.Snapshot()
}
