package sim

import (
	"time"

	"pprox/internal/cluster"
	"pprox/internal/stats"
)

// Row is one candlestick of one figure: a configuration at a request
// rate.
type Row struct {
	Figure string
	Config string
	RPS    int
	Candle stats.Candlestick
}

// RunOptions tune how much virtual time each point simulates.
type RunOptions struct {
	// Duration is the injection window per repetition (virtual time).
	Duration time.Duration
	// Trim is removed from both ends of the measurement window (§8
	// trims 15 s of 5-minute runs; scaled down proportionally here).
	Trim time.Duration
	// Repetitions aggregates several seeded runs, like the paper's 6.
	Repetitions int
}

// DefaultRunOptions simulate 60 virtual seconds per point, 3 repetitions,
// trimming 5 s per side — enough for tight quartiles at 50 RPS.
func DefaultRunOptions() RunOptions {
	return RunOptions{Duration: 60 * time.Second, Trim: 5 * time.Second, Repetitions: 3}
}

// QuickRunOptions are for tests and smoke runs.
func QuickRunOptions() RunOptions {
	return RunOptions{Duration: 12 * time.Second, Trim: 1 * time.Second, Repetitions: 1}
}

func runPoint(spec SystemSpec, rps int, opts RunOptions) stats.Distribution {
	reps := opts.Repetitions
	if reps <= 0 {
		reps = 1
	}
	dists := make([]stats.Distribution, 0, reps)
	for r := 0; r < reps; r++ {
		spec.Seed = int64(r + 1)
		sys := NewSystem(spec)
		dists = append(dists, sys.Run(rps, opts.Duration, opts.Trim))
	}
	return stats.Merge(dists...)
}

func microByName(name string) cluster.MicroConfig {
	for _, c := range cluster.MicroConfigs() {
		if c.Name == name {
			return c
		}
	}
	panic("sim: unknown micro configuration " + name)
}

// Figure6 regenerates Fig. 6: the latency contribution of each privacy
// feature (m1 plain, m2 +encryption, m3 +SGX, m4 item pseudonymization
// off) from 50 to 250 RPS against the stub LRS.
func Figure6(opts RunOptions) []Row {
	var rows []Row
	for _, name := range []string{"m1", "m2", "m3", "m4"} {
		cfg := microByName(name)
		for _, rps := range cluster.MicroRPSPoints() {
			d := runPoint(FromMicro(cfg), rps, opts)
			rows = append(rows, Row{Figure: "6", Config: name, RPS: rps, Candle: d.Candlestick()})
		}
	}
	return rows
}

// Figure7 regenerates Fig. 7: the impact of shuffling (m3 without, m5 with
// S=5, m6 with S=10).
func Figure7(opts RunOptions) []Row {
	var rows []Row
	for _, name := range []string{"m3", "m5", "m6"} {
		cfg := microByName(name)
		for _, rps := range cluster.MicroRPSPoints() {
			d := runPoint(FromMicro(cfg), rps, opts)
			rows = append(rows, Row{Figure: "7", Config: name, RPS: rps, Candle: d.Candlestick()})
		}
	}
	return rows
}

// Figure8 regenerates Fig. 8: horizontal scaling of the proxy service
// (m6–m9, 1 to 4 instances per layer) from 50 to each configuration's
// maximum rate.
func Figure8(opts RunOptions) []Row {
	var rows []Row
	for _, name := range []string{"m6", "m7", "m8", "m9"} {
		cfg := microByName(name)
		for _, rps := range cluster.RPSPointsUpTo(cfg.MaxRPS) {
			d := runPoint(FromMicro(cfg), rps, opts)
			rows = append(rows, Row{Figure: "8", Config: name, RPS: rps, Candle: d.Candlestick()})
		}
	}
	return rows
}

// Figure9 regenerates Fig. 9: the Harness LRS baseline (b1–b4).
func Figure9(opts RunOptions) []Row {
	var rows []Row
	for _, cfg := range cluster.BaselineConfigs() {
		for _, rps := range cluster.RPSPointsUpTo(cfg.MaxRPS) {
			d := runPoint(FromMacro(cfg), rps, opts)
			rows = append(rows, Row{Figure: "9", Config: cfg.Name, RPS: rps, Candle: d.Candlestick()})
		}
	}
	return rows
}

// Figure10 regenerates Fig. 10: the complete integrated system (f1–f4).
func Figure10(opts RunOptions) []Row {
	var rows []Row
	for _, cfg := range cluster.FullConfigs() {
		for _, rps := range cluster.RPSPointsUpTo(cfg.MaxRPS) {
			d := runPoint(FromMacro(cfg), rps, opts)
			rows = append(rows, Row{Figure: "10", Config: cfg.Name, RPS: rps, Candle: d.Candlestick()})
		}
	}
	return rows
}
