package sim

import (
	"math/rand"
	"testing"
	"time"

	"pprox/internal/cluster"
)

func ms(n float64) time.Duration { return time.Duration(n * float64(time.Millisecond)) }

func TestEngineOrdersEvents(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(3*time.Millisecond, func() { order = append(order, 3) })
	e.After(1*time.Millisecond, func() { order = append(order, 1) })
	e.After(2*time.Millisecond, func() { order = append(order, 2) })
	e.Run(time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != time.Second {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.After(time.Millisecond, func() { order = append(order, i) })
	}
	e.Run(time.Second)
	for i, got := range order {
		if got != i {
			t.Fatalf("same-time events ran out of order: %v", order)
		}
	}
}

func TestEngineStopsAtHorizon(t *testing.T) {
	e := NewEngine()
	ran := false
	e.After(2*time.Second, func() { ran = true })
	e.Run(time.Second)
	if ran {
		t.Error("event beyond horizon executed")
	}
}

func TestNodeQueuesBeyondCores(t *testing.T) {
	e := NewEngine()
	n := NewNode(e, 2)
	var done []time.Duration
	for i := 0; i < 4; i++ {
		n.Submit(10*time.Millisecond, func() { done = append(done, e.Now()) })
	}
	e.Run(time.Second)
	if len(done) != 4 {
		t.Fatalf("completed %d jobs", len(done))
	}
	// Two cores: jobs finish at 10ms, 10ms, 20ms, 20ms.
	if done[0] != 10*time.Millisecond || done[2] != 20*time.Millisecond {
		t.Errorf("completions = %v", done)
	}
}

func TestShufflerBatchesInVirtualTime(t *testing.T) {
	e := NewEngine()
	s := NewShuffler(e, 3, 500*time.Millisecond)
	var released []time.Duration
	add := func(at time.Duration) {
		e.After(at, func() { s.Add(func() { released = append(released, e.Now()) }) })
	}
	add(0)
	add(10 * time.Millisecond)
	add(20 * time.Millisecond) // fills the buffer → flush at 20ms
	add(30 * time.Millisecond) // alone → timer flush at 530ms
	e.Run(2 * time.Second)
	if len(released) != 4 {
		t.Fatalf("released %d", len(released))
	}
	for i := 0; i < 3; i++ {
		if released[i] != 20*time.Millisecond {
			t.Errorf("batch released at %v, want 20ms", released[i])
		}
	}
	if released[3] != 530*time.Millisecond {
		t.Errorf("timer flush at %v, want 530ms", released[3])
	}
}

func TestShufflerDisabled(t *testing.T) {
	e := NewEngine()
	s := NewShuffler(e, 0, 0)
	ran := false
	s.Add(func() { ran = true })
	if !ran {
		t.Error("disabled shuffler delayed the message")
	}
}

func TestServiceTimeMoments(t *testing.T) {
	st := NewServiceTime(newTestRng(), 10*time.Millisecond, 0.4)
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += float64(st.Sample())
	}
	mean := sum / float64(n)
	if mean < 0.85*float64(10*time.Millisecond) || mean > 1.15*float64(10*time.Millisecond) {
		t.Errorf("sample mean %.2fms, want ≈ 10ms", mean/1e6)
	}
	det := NewServiceTime(newTestRng(), 10*time.Millisecond, 0)
	if det.Sample() != 10*time.Millisecond {
		t.Error("cv=0 must be deterministic")
	}
}

func TestSimulationDeterminism(t *testing.T) {
	spec := FromMicro(cluster.MicroConfigs()[2])
	opts := QuickRunOptions()
	a := runPoint(spec, 100, opts).Candlestick()
	b := runPoint(spec, 100, opts).Candlestick()
	if a != b {
		t.Errorf("same seed, different results:\n%v\n%v", a, b)
	}
}

// TestFigure6Shape verifies the paper's qualitative claims (§8.1.1):
// encryption costs more than SGX, item pseudonymization is negligible,
// and all configurations stay interactive (< 50 ms median) up to 250 RPS.
func TestFigure6Shape(t *testing.T) {
	opts := QuickRunOptions()
	med := func(name string, rps int) time.Duration {
		return runPoint(FromMicro(microByName(name)), rps, opts).Median()
	}
	m1, m2, m3, m4 := med("m1", 100), med("m2", 100), med("m3", 100), med("m4", 100)

	encCost := m2 - m1
	sgxCost := m3 - m2
	if encCost <= 0 || sgxCost <= 0 {
		t.Fatalf("features are free? enc=+%v sgx=+%v", encCost, sgxCost)
	}
	if encCost <= sgxCost {
		t.Errorf("encryption (+%v) must cost more than SGX (+%v)", encCost, sgxCost)
	}
	if sgxCost < ms(1) || sgxCost > ms(6) {
		t.Errorf("SGX adds %v, paper reports 2–5 ms", sgxCost)
	}
	if diff := m3 - m4; diff < 0 || diff > ms(1) {
		t.Errorf("item pseudonymization toggle changes median by %v, paper says negligible", diff)
	}
	for name, v := range map[string]time.Duration{"m1": m1, "m2": m2, "m3": m3, "m4": m4} {
		if v > ms(50) {
			t.Errorf("%s median %v exceeds Fig. 6's 50 ms axis", name, v)
		}
	}
}

// TestFigure7Shape verifies §8.1.1's shuffling claims: at 50 RPS S=10 is
// too slow for most SLOs while S=5 stays within a few hundred ms; at
// ≥ 100 RPS medians fall well below 200 ms.
func TestFigure7Shape(t *testing.T) {
	opts := QuickRunOptions()
	med := func(name string, rps int) time.Duration {
		return runPoint(FromMicro(microByName(name)), rps, opts).Median()
	}
	m3at50, m5at50, m6at50 := med("m3", 50), med("m5", 50), med("m6", 50)
	if !(m3at50 < m5at50 && m5at50 < m6at50) {
		t.Errorf("shuffle latency must grow with S at 50 RPS: %v %v %v", m3at50, m5at50, m6at50)
	}
	if m5at50 > ms(400) {
		t.Errorf("S=5 at 50 RPS median %v, want at most a few hundred ms", m5at50)
	}
	// Batches leaving the UA arrive at the IA together, so the response
	// buffer refills quickly: the second stage adds far less than the
	// first. The median still roughly doubles m5's.
	if m6at50 < ms(120) {
		t.Errorf("S=10 at 50 RPS median %v, paper reports it too high for most SLOs", m6at50)
	}
	for _, name := range []string{"m5", "m6"} {
		for _, rps := range []int{100, 250} {
			if m := med(name, rps); m > ms(200) {
				t.Errorf("%s at %d RPS median %v, paper reports well below 200 ms", name, rps, m)
			}
		}
	}
}

// TestFigure8Shape verifies §8.1.2: each added instance pair buys 250 RPS
// — m9 (4 pairs) stays under 200 ms at 1000 RPS, while m6 (1 pair)
// saturates there.
func TestFigure8Shape(t *testing.T) {
	opts := QuickRunOptions()
	m9 := runPoint(FromMicro(microByName("m9")), 1000, opts)
	if m := m9.Median(); m > ms(200) {
		t.Errorf("m9 at 1000 RPS median %v, paper reports consistently under 200 ms", m)
	}
	m6 := runPoint(FromMicro(microByName("m6")), 500, opts)
	if m := m6.Median(); m < ms(200) {
		t.Errorf("m6 at 500 RPS median %v — should be far beyond saturation", m)
	}
	// Over-provisioning hurts at low rate: m9 at 50 RPS pays long
	// shuffle fills (§8.1.2's scale-down observation).
	m9low := runPoint(FromMicro(microByName("m9")), 50, opts)
	if m := m9low.Median(); m < ms(200) {
		t.Errorf("m9 at 50 RPS median %v, paper reports shuffle delays dominating", m)
	}
}

// TestFigure9Shape verifies §8.2's baseline claims: sub-100 ms medians up
// to 500 RPS on the right-sized deployment, saturation when driven 250
// beyond the configuration's rating.
func TestFigure9Shape(t *testing.T) {
	opts := QuickRunOptions()
	b2 := FromMacro(cluster.BaselineConfigs()[1]) // rated 500
	if m := runPoint(b2, 500, opts).Median(); m > ms(100) {
		t.Errorf("b2 at 500 RPS median %v, paper reports below 100 ms", m)
	}
	b1 := FromMacro(cluster.BaselineConfigs()[0]) // rated 250, saturates at 500
	if m := runPoint(b1, 500, opts).Median(); m < ms(150) {
		t.Errorf("b1 at 500 RPS median %v — should saturate", m)
	}
	b4 := FromMacro(cluster.BaselineConfigs()[3])
	d := runPoint(b4, 1000, opts)
	if max := d.Candlestick().WHigh; max < ms(100) || max > ms(600) {
		t.Errorf("b4 at 1000 RPS upper whisker %v, paper reports peaks near 300 ms", max)
	}
}

// TestFigure10Shape verifies §8.2's integrated-system claims: medians
// between 100 and 200 ms for 250–750 RPS, everything below 300 ms; at
// 1000 RPS the median stays under 200 ms.
func TestFigure10Shape(t *testing.T) {
	opts := QuickRunOptions()
	fs := cluster.FullConfigs()
	for i, rps := range []int{250, 500, 750} {
		d := runPoint(FromMacro(fs[i]), rps, opts)
		m := d.Median()
		if m < ms(40) || m > ms(300) {
			t.Errorf("f%d at %d RPS median %v, paper reports 100–200 ms systematically below 300", i+1, rps, m)
		}
	}
	f4 := runPoint(FromMacro(fs[3]), 1000, opts)
	if m := f4.Median(); m > ms(200) {
		t.Errorf("f4 at 1000 RPS median %v, paper reports below 200 ms", m)
	}
}

// TestLatencyAdditivity checks the paper's observation that Fig. 10
// latencies are "the sum of latencies observed in Figures 8 and 9".
func TestLatencyAdditivity(t *testing.T) {
	opts := QuickRunOptions()
	proxyOnly := runPoint(FromMicro(microByName("m7")), 500, opts).Median()
	lrsOnly := runPoint(FromMacro(cluster.BaselineConfigs()[1]), 500, opts).Median()
	full := runPoint(FromMacro(cluster.FullConfigs()[1]), 500, opts).Median()
	sum := proxyOnly + lrsOnly - stubService // proxy-only includes the stub
	lo, hi := time.Duration(float64(sum)*0.6), time.Duration(float64(sum)*1.6)
	if full < lo || full > hi {
		t.Errorf("f2 median %v vs proxy(%v)+LRS(%v) ≈ %v: not additive", full, proxyOnly, lrsOnly, sum)
	}
}

func newTestRng() *rand.Rand { return rand.New(rand.NewSource(7)) }

// TestElasticScalingBeatsFixedFleet verifies the §5/§8.1.2 motivation for
// elastic scaling: a fixed 4-pair fleet pays long shuffle-fill delays at
// low rates and costs more pair-seconds; the controller tracks load and
// keeps every segment's median within SLO.
func TestElasticScalingBeatsFixedFleet(t *testing.T) {
	opts := QuickRunOptions()
	fixed, elastic := RunElastic(4, ElasticTrace(), opts)

	if elastic.PairSeconds >= fixed.PairSeconds {
		t.Errorf("elastic cost %.0f pair-s not below fixed %.0f", elastic.PairSeconds, fixed.PairSeconds)
	}
	// The fixed fleet's 50 RPS segments are timer-bound (≈ 0.5–1 s);
	// elastic drops to 1 pair and stays interactive.
	if w := fixed.WorstMedian(); w < ms(300) {
		t.Errorf("fixed fleet worst median %v — expected timer-bound low-load segments", w)
	}
	if w := elastic.WorstMedian(); w > ms(300) {
		t.Errorf("elastic worst median %v exceeds the 300 ms SLO", w)
	}
	// Elastic still survives the 1000 RPS peak.
	for _, s := range elastic.Segments {
		if s.RPS == 1000 && s.Candle.Median > ms(300) {
			t.Errorf("elastic at peak: median %v", s.Candle.Median)
		}
	}
}

// TestPostsMarginallyFasterThanGets verifies footnote 9: "We evaluated the
// costs of post requests and these systematically follow the same trends
// as for get requests, with only marginally lower latencies."
func TestPostsMarginallyFasterThanGets(t *testing.T) {
	opts := QuickRunOptions()
	spec := FromMicro(microByName("m3"))

	gets := runPoint(spec, 100, opts).Median()
	postSpec := spec
	postSpec.PostFraction = 1.0
	posts := runPoint(postSpec, 100, opts).Median()

	if posts >= gets {
		t.Errorf("posts (%v) not faster than gets (%v)", posts, gets)
	}
	// "Marginally": within a few ms, same order of magnitude.
	if diff := gets - posts; diff > ms(6) {
		t.Errorf("posts faster by %v — more than marginal", diff)
	}
}
