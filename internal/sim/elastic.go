package sim

import (
	"time"

	"pprox/internal/autoscale"
	"pprox/internal/stats"
)

// elastic.go simulates the elastic scaling the paper calls for (§5,
// §8.1.2): a time-varying load is served either by a fixed proxy fleet or
// by one resized per load segment by the autoscale controller. The
// experiment quantifies the trade-off the paper describes — fixed large
// fleets waste capacity AND latency (starved shuffle buffers at low
// load), while elastic fleets track the knee.

// ElasticSegment is one measured segment of the load trace.
type ElasticSegment struct {
	RPS    int
	Pairs  int
	Candle stats.Candlestick
}

// ElasticResult compares one policy over the whole trace.
type ElasticResult struct {
	Policy   string
	Segments []ElasticSegment
	// PairSeconds is the provisioned capacity integral (instance pairs
	// × seconds): the deployment cost.
	PairSeconds float64
}

// ElasticTrace is the diurnal-style load profile used by the experiment.
func ElasticTrace() []int {
	return []int{50, 250, 500, 1000, 750, 250, 50}
}

// RunElastic simulates the trace under a fixed fleet of fixedPairs and
// under the autoscale controller, with shuffle size S = 10 as in
// Figure 8. Each segment runs for opts.Duration of virtual time.
func RunElastic(fixedPairs int, trace []int, opts RunOptions) (fixed, elastic ElasticResult) {
	fixed = runPolicy("fixed", trace, opts, func(rps int, current int) int {
		return fixedPairs
	})
	ctrl := autoscale.DefaultController()
	elastic = runPolicy("elastic", trace, opts, func(rps int, current int) int {
		// The controller sees the (perfectly estimated) segment rate;
		// estimator dynamics are unit-tested in internal/autoscale.
		return ctrl.Desired(float64(rps), current)
	})
	return fixed, elastic
}

func runPolicy(name string, trace []int, opts RunOptions, pairsFor func(rps, current int) int) ElasticResult {
	res := ElasticResult{Policy: name}
	current := 1
	for _, rps := range trace {
		current = pairsFor(rps, current)
		spec := SystemSpec{
			Proxy: true, UA: current, IA: current,
			Encryption: true, SGX: true, ItemPseudonyms: true,
			Shuffle: 10, UseStub: true, Seed: 1,
		}
		sys := NewSystem(spec)
		dist := sys.Run(rps, opts.Duration, opts.Trim)
		res.Segments = append(res.Segments, ElasticSegment{
			RPS:    rps,
			Pairs:  current,
			Candle: dist.Candlestick(),
		})
		res.PairSeconds += float64(current) * opts.Duration.Seconds()
	}
	return res
}

// WorstMedian returns the highest per-segment median latency of a policy.
func (r ElasticResult) WorstMedian() time.Duration {
	var worst time.Duration
	for _, s := range r.Segments {
		if s.Candle.Median > worst {
			worst = s.Candle.Median
		}
	}
	return worst
}
