// Package cco implements Correlated Cross-Occurrence (CCO) model training,
// the collaborative-filtering algorithm of the Universal Recommender that
// the PProx paper integrates with (§7): "UR implements collaborative
// filtering based on the Correlated Cross-Occurrence (CCO) algorithm. CCO
// aggregates indicators (in our setup, feedback on the access to items)
// and builds profiles allowing to predict users' interests based on the
// history of other profiles with high similarity."
//
// The implementation follows Mahout's SimilarityAnalysis: per-user and
// per-item interaction downsampling, item co-occurrence counting, and
// log-likelihood-ratio (LLR) scoring to keep only statistically
// significant correlations — the top correlated items per item become that
// item's "indicators", indexed for retrieval. In Harness this job runs as
// a periodic Apache Spark batch; here it is an in-process batch trainer
// (see DESIGN.md §1 for the substitution).
package cco

import (
	"math"
	"sort"
)

// Event is one feedback interaction: user u accessed item i. This is
// exactly the information a post(u, i) call carries; under PProx both
// identifiers are pseudonyms, which is invisible to the algorithm.
type Event struct {
	User string
	Item string
}

// Correlation is one scored indicator: Item is correlated with the owning
// model entry with the given LLR strength.
type Correlation struct {
	Item string
	LLR  float64
}

// Model maps each item to its top correlated items, strongest first.
type Model struct {
	// Indicators lists, per item, the correlated items by descending LLR.
	Indicators map[string][]Correlation
	// Popularity counts distinct users per item, used for cold-start
	// ranking when a user has no usable history.
	Popularity map[string]int
	// Users is the number of distinct users seen at training time.
	Users int
}

// Config bounds the trainer the way Mahout does.
type Config struct {
	// MaxInteractionsPerUser caps each user history before pair
	// counting (downsampling); Mahout's default is 500. Histories are
	// truncated keeping the most recent interactions.
	MaxInteractionsPerUser int
	// MaxCorrelatorsPerItem caps each item's indicator list; Mahout's
	// default is 50.
	MaxCorrelatorsPerItem int
	// MinLLR discards correlations below this significance threshold.
	MinLLR float64
}

// DefaultConfig returns Mahout-compatible defaults.
func DefaultConfig() Config {
	return Config{
		MaxInteractionsPerUser: 500,
		MaxCorrelatorsPerItem:  50,
		MinLLR:                 0,
	}
}

// Train builds a CCO model from an event log. Events are processed in
// order; when a user exceeds MaxInteractionsPerUser, the oldest
// interactions are dropped.
func Train(events []Event, cfg Config) *Model {
	if cfg.MaxInteractionsPerUser <= 0 {
		cfg.MaxInteractionsPerUser = DefaultConfig().MaxInteractionsPerUser
	}
	if cfg.MaxCorrelatorsPerItem <= 0 {
		cfg.MaxCorrelatorsPerItem = DefaultConfig().MaxCorrelatorsPerItem
	}

	// Distinct (user, item) interactions, preserving order per user.
	histories := make(map[string][]string)
	seen := make(map[[2]string]bool, len(events))
	for _, ev := range events {
		key := [2]string{ev.User, ev.Item}
		if seen[key] {
			continue
		}
		seen[key] = true
		histories[ev.User] = append(histories[ev.User], ev.Item)
	}

	// Downsample: keep the most recent interactions per user.
	for u, h := range histories {
		if len(h) > cfg.MaxInteractionsPerUser {
			histories[u] = h[len(h)-cfg.MaxInteractionsPerUser:]
		}
	}

	// Item interaction counts (distinct users per item).
	popularity := make(map[string]int)
	for _, h := range histories {
		for _, it := range h {
			popularity[it]++
		}
	}

	// Co-occurrence counting: for each user, every unordered pair of
	// items in their downsampled history co-occurs once.
	cooc := make(map[string]map[string]int)
	bump := func(a, b string) {
		m, ok := cooc[a]
		if !ok {
			m = make(map[string]int)
			cooc[a] = m
		}
		m[b]++
	}
	for _, h := range histories {
		for i := 0; i < len(h); i++ {
			for j := i + 1; j < len(h); j++ {
				bump(h[i], h[j])
				bump(h[j], h[i])
			}
		}
	}

	// LLR scoring per item pair.
	total := len(histories)
	model := &Model{
		Indicators: make(map[string][]Correlation, len(cooc)),
		Popularity: popularity,
		Users:      total,
	}
	for item, neighbors := range cooc {
		cs := make([]Correlation, 0, len(neighbors))
		for other, k11 := range neighbors {
			score := LLR(k11, popularity[item], popularity[other], total)
			if score <= cfg.MinLLR {
				continue
			}
			cs = append(cs, Correlation{Item: other, LLR: score})
		}
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].LLR != cs[j].LLR {
				return cs[i].LLR > cs[j].LLR
			}
			return cs[i].Item < cs[j].Item
		})
		if len(cs) > cfg.MaxCorrelatorsPerItem {
			cs = cs[:cfg.MaxCorrelatorsPerItem]
		}
		if len(cs) > 0 {
			model.Indicators[item] = cs
		}
	}
	return model
}

// LLR computes the log-likelihood-ratio significance of the co-occurrence
// of two items (Dunning's G² statistic), given:
//
//	k11 — users who interacted with both items,
//	countA, countB — users who interacted with each item,
//	total — total users.
//
// Degenerate inputs (zero counts, inconsistent margins) yield 0.
func LLR(k11, countA, countB, total int) float64 {
	k12 := countA - k11 // A without B
	k21 := countB - k11 // B without A
	k22 := total - countA - countB + k11
	if k11 < 0 || k12 < 0 || k21 < 0 || k22 < 0 || total <= 0 {
		return 0
	}
	rowEntropy := entropy2(k11+k12, k21+k22)
	colEntropy := entropy2(k11+k21, k12+k22)
	matEntropy := entropy4(k11, k12, k21, k22)
	llr := 2 * (rowEntropy + colEntropy - matEntropy)
	if llr < 0 || math.IsNaN(llr) {
		return 0 // numerical noise
	}
	return llr
}

func xlogx(x int) float64 {
	if x <= 0 {
		return 0
	}
	f := float64(x)
	return f * math.Log(f)
}

func entropy2(a, b int) float64 {
	return xlogx(a+b) - xlogx(a) - xlogx(b)
}

func entropy4(a, b, c, d int) float64 {
	return xlogx(a+b+c+d) - xlogx(a) - xlogx(b) - xlogx(c) - xlogx(d)
}

// TopIndicators returns up to n indicator item IDs for an item, strongest
// first, or nil if the item is unknown to the model.
func (m *Model) TopIndicators(item string, n int) []string {
	cs := m.Indicators[item]
	if len(cs) == 0 {
		return nil
	}
	if n > len(cs) {
		n = len(cs)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = cs[i].Item
	}
	return out
}

// PopularItems returns the n most popular items (distinct-user count),
// most popular first, ties broken by ascending item ID. It backs the
// cold-start path.
func (m *Model) PopularItems(n int) []string {
	type pop struct {
		item  string
		count int
	}
	all := make([]pop, 0, len(m.Popularity))
	for it, c := range m.Popularity {
		all = append(all, pop{it, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].item < all[j].item
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].item
	}
	return out
}
