package cco

import (
	"fmt"
	"testing"
)

func tev(user, item, typ string) TypedEvent { return TypedEvent{User: user, Item: item, Type: typ} }

func TestTrainMultiCrossOccurrence(t *testing.T) {
	// Users who VIEW trailers of "dune" tend to BUY "dune-book";
	// unrelated viewers buy nothing relevant.
	var events []TypedEvent
	for i := 0; i < 15; i++ {
		u := fmt.Sprintf("fan-%d", i)
		events = append(events,
			tev(u, "dune-trailer", "view"),
			tev(u, "dune-book", ""), // primary: purchase
		)
	}
	for i := 0; i < 15; i++ {
		u := fmt.Sprintf("other-%d", i)
		events = append(events,
			tev(u, "cat-video", "view"),
			tev(u, "cookbook", ""),
		)
	}
	m := TrainMulti(events, DefaultConfig())

	cross := m.CrossIndicators("dune-book", "view", 5)
	if len(cross) == 0 || cross[0] != "dune-trailer" {
		t.Errorf("cross indicators for dune-book = %v, want dune-trailer first", cross)
	}
	for _, c := range cross {
		if c == "cat-video" {
			t.Error("uncorrelated view indicator attached to dune-book")
		}
	}
	if types := m.Types(); len(types) != 1 || types[0] != "view" {
		t.Errorf("Types = %v", types)
	}
}

func TestTrainMultiPrimaryStillWorks(t *testing.T) {
	var events []TypedEvent
	for i := 0; i < 12; i++ {
		u := fmt.Sprintf("u%d", i)
		events = append(events, tev(u, "a", ""), tev(u, "b", ""))
	}
	for i := 0; i < 6; i++ {
		events = append(events, tev(fmt.Sprintf("s%d", i), "c", ""))
	}
	m := TrainMulti(events, DefaultConfig())
	top := m.Primary.TopIndicators("a", 1)
	if len(top) != 1 || top[0] != "b" {
		t.Errorf("primary indicators broken under TrainMulti: %v", top)
	}
}

func TestTrainMultiIgnoresInsignificantCross(t *testing.T) {
	// A secondary item viewed by everyone predicts nothing.
	var events []TypedEvent
	for i := 0; i < 20; i++ {
		u := fmt.Sprintf("u%d", i)
		events = append(events, tev(u, "homepage", "view"))
		if i < 10 {
			events = append(events, tev(u, "thing", ""))
		}
	}
	m := TrainMulti(events, DefaultConfig())
	for _, c := range m.CrossIndicators("thing", "view", 10) {
		if c == "homepage" {
			t.Error("ubiquitous secondary indicator correlated with the primary item")
		}
	}
}

func TestTrainMultiRespectsCaps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCorrelatorsPerItem = 2
	var events []TypedEvent
	for spoke := 0; spoke < 8; spoke++ {
		for i := 0; i < 4; i++ {
			u := fmt.Sprintf("u%d-%d", spoke, i)
			events = append(events,
				tev(u, fmt.Sprintf("page-%d", spoke), "view"),
				tev(u, "hub", ""),
			)
		}
	}
	// Contrast users so correlations are significant.
	for i := 0; i < 10; i++ {
		events = append(events, tev(fmt.Sprintf("bg%d", i), "elsewhere", "view"))
	}
	m := TrainMulti(events, cfg)
	if got := len(m.Cross["view"]["hub"]); got > 2 {
		t.Errorf("hub has %d cross correlators, cap is 2", got)
	}
}

func TestTrainMultiDeduplicatesSecondary(t *testing.T) {
	var events []TypedEvent
	for i := 0; i < 8; i++ {
		u := fmt.Sprintf("u%d", i)
		events = append(events,
			tev(u, "promo", "view"), tev(u, "promo", "view"), tev(u, "promo", "view"),
			tev(u, "gadget", ""),
		)
	}
	for i := 0; i < 8; i++ {
		events = append(events, tev(fmt.Sprintf("bg%d", i), "other", "view"))
	}
	m := TrainMulti(events, DefaultConfig())
	// With dedup, promo count = 8 users; correlation exists and is
	// finite; without dedup counts would be inflated 3×. We can only
	// assert the model is sane: promo correlates with gadget.
	cross := m.CrossIndicators("gadget", "view", 3)
	if len(cross) == 0 || cross[0] != "promo" {
		t.Errorf("cross = %v", cross)
	}
}

func TestTrainMultiEmptyAndNoSecondary(t *testing.T) {
	m := TrainMulti(nil, DefaultConfig())
	if len(m.Cross) != 0 || m.Primary.Users != 0 {
		t.Errorf("empty multi-train: %+v", m)
	}
	m = TrainMulti([]TypedEvent{tev("u", "i", "")}, DefaultConfig())
	if len(m.Types()) != 0 {
		t.Errorf("no secondary events but Types = %v", m.Types())
	}
	if got := m.CrossIndicators("i", "view", 5); got != nil {
		t.Errorf("CrossIndicators on absent type = %v", got)
	}
}

func TestTrainMultiDownsamplesSecondaryHistories(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInteractionsPerUser = 2
	var events []TypedEvent
	// One user views 10 pages then buys; only the last 2 views count.
	for i := 0; i < 10; i++ {
		events = append(events, tev("hoarder", fmt.Sprintf("page-%d", i), "view"))
	}
	events = append(events, tev("hoarder", "gadget", ""))
	// Reinforcing users on the recent pages + background contrast.
	for i := 0; i < 6; i++ {
		u := fmt.Sprintf("u%d", i)
		events = append(events, tev(u, "page-9", "view"), tev(u, "gadget", ""))
	}
	for i := 0; i < 6; i++ {
		events = append(events, tev(fmt.Sprintf("bg%d", i), "elsewhere", "view"))
	}
	m := TrainMulti(events, cfg)
	for _, c := range m.CrossIndicators("gadget", "view", 20) {
		if c == "page-0" {
			t.Error("downsampled-away view still correlated")
		}
	}
}
