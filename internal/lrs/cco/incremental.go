package cco

import (
	"sort"
	"sync"
)

// incremental.go maintains the CCO co-occurrence counts event by event,
// following the incremental item-similarity blueprint of Zhao et al.'s
// scalable item-based top-N work: instead of re-counting the whole event
// log per training run, each arriving (user, item) interaction applies a
// bounded delta to the pair counts, and only the rows those deltas touch
// are re-scored online.
//
// The invariant that makes the increments *exact* rather than
// approximate: after every Apply, the popularity and pair counts equal
// what batch Train would compute over the same event stream. Train's
// counting pipeline is (1) global (user, item) dedup keeping the first
// occurrence, (2) per-user keep-last-K downsampling of the deduped
// history, (3) pair counting within each user's window, (4) per-user
// popularity over the windows. Apply mirrors it as a sliding window: a
// duplicate is dropped against the user's ever-seen set (step 1); a
// distinct item entering a full window evicts the oldest item, removing
// its pair and popularity contributions (step 2, since keep-last-K over
// a growing sequence IS a sliding window); the new item then pairs with
// the surviving window (step 3) and counts once for popularity (step 4).
// Induction over the stream gives count equality, and LLR scoring is a
// pure function of the counts — so re-scoring all rows reproduces the
// batch model bit for bit (TestIncrementalConvergesToBatch).
//
// What online re-scoring does NOT chase: a new user or a popularity
// change shifts the LLR margins of *every* row. Apply re-scores only the
// rows whose pair counts changed (they are the ones retrieval quality
// depends on for the just-active user); the remaining rows keep their
// last scores until the next Apply touches them or Model() re-scores
// everything. That staleness is in scores only — never in counts — and
// disappears at every compaction.

// RowUpdate is one re-scored indicator row produced by Apply: the item
// whose correlator list changed and its fresh (bounded, sorted) row. An
// empty Indicators slice means the row scored below threshold and the
// item should drop out of retrieval.
type RowUpdate struct {
	Item       string
	Indicators []Correlation
}

// userWindow is one user's interaction state: the ever-seen dedup set
// and the sliding window of the last ≤ MaxInteractionsPerUser distinct
// items, in arrival order.
type userWindow struct {
	seen   map[string]struct{}
	window []string
}

// Incremental maintains CCO counts under per-event updates. It is safe
// for concurrent use; Apply calls are serialized internally, so the
// caller's event order is the model's event order.
type Incremental struct {
	mu      sync.Mutex
	cfg     Config
	users   map[string]*userWindow
	pop     map[string]int
	cooc    map[string]map[string]int
	applied uint64
}

// NewIncremental builds an empty incremental model with the same config
// normalization as Train.
func NewIncremental(cfg Config) *Incremental {
	if cfg.MaxInteractionsPerUser <= 0 {
		cfg.MaxInteractionsPerUser = DefaultConfig().MaxInteractionsPerUser
	}
	if cfg.MaxCorrelatorsPerItem <= 0 {
		cfg.MaxCorrelatorsPerItem = DefaultConfig().MaxCorrelatorsPerItem
	}
	return &Incremental{
		cfg:   cfg,
		users: make(map[string]*userWindow),
		pop:   make(map[string]int),
		cooc:  make(map[string]map[string]int),
	}
}

// Apply folds one primary-indicator event into the counts and returns
// the freshly re-scored rows of every item whose pair counts changed,
// sorted by item for determinism. A duplicate (user, item) interaction
// returns nil: the counts are unchanged, exactly as batch dedup would
// drop it.
func (inc *Incremental) Apply(ev Event) []RowUpdate {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	inc.applied++

	uw := inc.users[ev.User]
	if uw == nil {
		uw = &userWindow{seen: make(map[string]struct{})}
		inc.users[ev.User] = uw
	}
	if _, dup := uw.seen[ev.Item]; dup {
		return nil
	}
	uw.seen[ev.Item] = struct{}{}

	changed := map[string]struct{}{ev.Item: {}}

	// Window full: evict the oldest item, undoing its contributions.
	if len(uw.window) >= inc.cfg.MaxInteractionsPerUser {
		oldest := uw.window[0]
		uw.window = uw.window[1:]
		inc.pop[oldest]--
		if inc.pop[oldest] == 0 {
			delete(inc.pop, oldest)
		}
		for _, w := range uw.window {
			inc.decPair(oldest, w)
			inc.decPair(w, oldest)
			changed[w] = struct{}{}
		}
		changed[oldest] = struct{}{}
	}

	// The new item co-occurs with every surviving window item.
	for _, w := range uw.window {
		inc.incPair(ev.Item, w)
		inc.incPair(w, ev.Item)
		changed[w] = struct{}{}
	}
	uw.window = append(uw.window, ev.Item)
	inc.pop[ev.Item]++

	items := make([]string, 0, len(changed))
	for it := range changed {
		items = append(items, it)
	}
	sort.Strings(items)
	out := make([]RowUpdate, len(items))
	for i, it := range items {
		out[i] = RowUpdate{Item: it, Indicators: inc.scoreRow(it)}
	}
	return out
}

func (inc *Incremental) incPair(a, b string) {
	row := inc.cooc[a]
	if row == nil {
		row = make(map[string]int)
		inc.cooc[a] = row
	}
	row[b]++
}

func (inc *Incremental) decPair(a, b string) {
	row := inc.cooc[a]
	if row == nil {
		return
	}
	row[b]--
	if row[b] <= 0 {
		delete(row, b)
		if len(row) == 0 {
			delete(inc.cooc, a)
		}
	}
}

// scoreRow computes one item's indicator row from the current counts —
// the same filter/sort/cap pipeline as Train. Callers hold inc.mu.
func (inc *Incremental) scoreRow(item string) []Correlation {
	neighbors := inc.cooc[item]
	if len(neighbors) == 0 {
		return nil
	}
	total := len(inc.users)
	cs := make([]Correlation, 0, len(neighbors))
	for other, k11 := range neighbors {
		score := LLR(k11, inc.pop[item], inc.pop[other], total)
		if score <= inc.cfg.MinLLR {
			continue
		}
		cs = append(cs, Correlation{Item: other, LLR: score})
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].LLR != cs[j].LLR {
			return cs[i].LLR > cs[j].LLR
		}
		return cs[i].Item < cs[j].Item
	})
	if len(cs) > inc.cfg.MaxCorrelatorsPerItem {
		cs = cs[:inc.cfg.MaxCorrelatorsPerItem]
	}
	return cs
}

// Row returns one item's indicator row re-scored against the current
// counts (always exact, regardless of which rows Apply has touched).
func (inc *Incremental) Row(item string) []Correlation {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.scoreRow(item)
}

// Model materializes the full model from the current counts: every row
// re-scored, popularity and user count copied. The result equals
// Train(events, cfg) over the applied event stream.
func (inc *Incremental) Model() *Model {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	m := &Model{
		Indicators: make(map[string][]Correlation, len(inc.cooc)),
		Popularity: make(map[string]int, len(inc.pop)),
		Users:      len(inc.users),
	}
	for it, c := range inc.pop {
		m.Popularity[it] = c
	}
	for item := range inc.cooc {
		if cs := inc.scoreRow(item); len(cs) > 0 {
			m.Indicators[item] = cs
		}
	}
	return m
}

// PopularItems returns the n most popular items, most popular first,
// ties broken by ascending item ID — the cold-start ranking.
func (inc *Incremental) PopularItems(n int) []string {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return (&Model{Popularity: inc.pop}).PopularItems(n)
}

// Users returns the distinct-user count.
func (inc *Incremental) Users() int {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return len(inc.users)
}

// Counts summarizes the model state: distinct users, items with
// popularity, and items carrying co-occurrence rows.
func (inc *Incremental) Counts() (users, items, rows int) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return len(inc.users), len(inc.pop), len(inc.cooc)
}

// Applied returns how many events have been folded in (duplicates
// included: they were processed, they just changed nothing).
func (inc *Incremental) Applied() uint64 {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.applied
}
