package cco

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func ev(user, item string) Event { return Event{User: user, Item: item} }

func TestTrainFindsObviousCorrelation(t *testing.T) {
	// Many users access both "bread" and "butter"; "anvil" is accessed
	// alone. bread↔butter must correlate, anvil must not.
	var events []Event
	for i := 0; i < 20; i++ {
		u := fmt.Sprintf("u%d", i)
		events = append(events, ev(u, "bread"), ev(u, "butter"))
	}
	for i := 0; i < 10; i++ {
		events = append(events, ev(fmt.Sprintf("loner%d", i), "anvil"))
	}
	m := Train(events, DefaultConfig())

	top := m.TopIndicators("bread", 5)
	if len(top) == 0 || top[0] != "butter" {
		t.Errorf("bread indicators = %v, want butter first", top)
	}
	if ind := m.TopIndicators("anvil", 5); len(ind) != 0 {
		t.Errorf("anvil has indicators %v, want none", ind)
	}
	if m.Users != 30 {
		t.Errorf("Users = %d, want 30", m.Users)
	}
}

func TestTrainLLRPrefersSignificantPairs(t *testing.T) {
	// "a" co-occurs with "b" in 10 dedicated users. "a" also co-occurs
	// once with the globally popular "pop" (which everyone has). The
	// significant correlation is b, not pop.
	var events []Event
	for i := 0; i < 10; i++ {
		u := fmt.Sprintf("ab%d", i)
		events = append(events, ev(u, "a"), ev(u, "b"))
	}
	for i := 0; i < 50; i++ {
		u := fmt.Sprintf("p%d", i)
		events = append(events, ev(u, "pop"))
	}
	events = append(events, ev("ab0", "pop")) // one incidental co-occurrence
	m := Train(events, DefaultConfig())
	top := m.TopIndicators("a", 1)
	if len(top) != 1 || top[0] != "b" {
		t.Errorf("a's top indicator = %v, want [b]", top)
	}
}

func TestTrainDeduplicatesRepeatedEvents(t *testing.T) {
	// The same (user, item) interaction repeated must count once.
	events := []Event{
		ev("u1", "x"), ev("u1", "x"), ev("u1", "x"),
		ev("u1", "y"),
		ev("u2", "x"), ev("u2", "y"),
	}
	m := Train(events, DefaultConfig())
	if m.Popularity["x"] != 2 {
		t.Errorf("popularity[x] = %d, want 2 distinct users", m.Popularity["x"])
	}
}

func TestTrainDownsamplesLongHistories(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInteractionsPerUser = 3
	var events []Event
	for i := 0; i < 10; i++ {
		events = append(events, ev("hoarder", fmt.Sprintf("i%d", i)))
	}
	// A second user shares only the most recent items; background users
	// provide the statistical contrast LLR needs (in a universe where
	// every user holds every item, no co-occurrence is significant).
	events = append(events, ev("u2", "i8"), ev("u2", "i9"))
	for i := 0; i < 10; i++ {
		events = append(events, ev(fmt.Sprintf("bg%d", i), "unrelated"))
	}
	m := Train(events, cfg)
	// Only the last 3 interactions (i7, i8, i9) of hoarder survive, so
	// i0 cannot correlate with anything.
	if ind := m.TopIndicators("i0", 5); len(ind) != 0 {
		t.Errorf("downsampled item i0 has indicators %v", ind)
	}
	if ind := m.TopIndicators("i8", 5); len(ind) == 0 {
		t.Error("recent item i8 lost its correlations")
	}
	if m.Popularity["i0"] != 0 {
		t.Errorf("popularity[i0] = %d, want 0 after downsampling", m.Popularity["i0"])
	}
}

func TestTrainCapsCorrelatorsPerItem(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCorrelatorsPerItem = 2
	var events []Event
	// hub co-occurs with 10 other items across many users.
	for i := 0; i < 10; i++ {
		for j := 0; j < 3; j++ {
			u := fmt.Sprintf("u%d-%d", i, j)
			events = append(events, ev(u, "hub"), ev(u, fmt.Sprintf("spoke%d", i)))
		}
	}
	m := Train(events, cfg)
	if got := len(m.Indicators["hub"]); got > 2 {
		t.Errorf("hub has %d correlators, cap is 2", got)
	}
}

func TestTrainMinLLRFilters(t *testing.T) {
	var events []Event
	for i := 0; i < 5; i++ {
		u := fmt.Sprintf("u%d", i)
		events = append(events, ev(u, "a"), ev(u, "b"))
	}
	weak := Train(events, Config{MinLLR: 1e9})
	if len(weak.Indicators) != 0 {
		t.Errorf("MinLLR=1e9 kept indicators: %v", weak.Indicators)
	}
}

func TestLLRKnownValues(t *testing.T) {
	// Perfect association: 10 users all have both items, 10 have
	// neither.
	strong := LLR(10, 10, 10, 20)
	if strong <= 0 {
		t.Errorf("perfect association LLR = %v, want > 0", strong)
	}
	// Independence: co-occurrence exactly at chance level.
	indep := LLR(5, 10, 10, 20)
	if indep > 1e-9 {
		t.Errorf("independent LLR = %v, want ≈ 0", indep)
	}
	if strong <= indep {
		t.Error("perfect association does not outscore independence")
	}
}

func TestLLRDegenerateInputs(t *testing.T) {
	cases := [][4]int{
		{0, 0, 0, 0},
		{5, 3, 10, 20}, // k11 > countA → negative cell
		{1, 1, 1, 0},   // zero total
		{-1, 2, 2, 10},
	}
	for _, c := range cases {
		if got := LLR(c[0], c[1], c[2], c[3]); got != 0 {
			t.Errorf("LLR(%v) = %v, want 0", c, got)
		}
	}
}

func TestLLRProperties(t *testing.T) {
	// Non-negativity and symmetry in the two items.
	f := func(k11raw, aRaw, bRaw, extraRaw uint8) bool {
		k11 := int(k11raw % 20)
		countA := k11 + int(aRaw%20)
		countB := k11 + int(bRaw%20)
		total := countA + countB - k11 + int(extraRaw%50)
		v1 := LLR(k11, countA, countB, total)
		v2 := LLR(k11, countB, countA, total)
		return v1 >= 0 && !math.IsNaN(v1) && math.Abs(v1-v2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPopularItems(t *testing.T) {
	events := []Event{
		ev("u1", "hot"), ev("u2", "hot"), ev("u3", "hot"),
		ev("u1", "warm"), ev("u2", "warm"),
		ev("u1", "cold"),
	}
	m := Train(events, DefaultConfig())
	top := m.PopularItems(2)
	if len(top) != 2 || top[0] != "hot" || top[1] != "warm" {
		t.Errorf("PopularItems = %v", top)
	}
	all := m.PopularItems(99)
	if len(all) != 3 {
		t.Errorf("PopularItems(99) = %v", all)
	}
}

func TestTopIndicatorsBounds(t *testing.T) {
	events := []Event{
		ev("u1", "a"), ev("u1", "b"),
		ev("u2", "a"), ev("u2", "b"),
		ev("u3", "c"), // contrast user, so a↔b is statistically significant
	}
	m := Train(events, DefaultConfig())
	if got := m.TopIndicators("a", 99); len(got) != 1 {
		t.Errorf("TopIndicators(99) = %v", got)
	}
	if got := m.TopIndicators("missing", 5); got != nil {
		t.Errorf("unknown item indicators = %v", got)
	}
}

func TestTrainEmptyInput(t *testing.T) {
	m := Train(nil, DefaultConfig())
	if len(m.Indicators) != 0 || m.Users != 0 {
		t.Errorf("empty training produced %+v", m)
	}
	if items := m.PopularItems(5); len(items) != 0 {
		t.Errorf("empty model popular items = %v", items)
	}
}

func TestTrainSymmetricCooccurrence(t *testing.T) {
	// If a correlates with b, b correlates with a (same LLR).
	events := []Event{ev("u1", "a"), ev("u1", "b"), ev("u2", "a"), ev("u2", "b"), ev("u3", "c")}
	m := Train(events, DefaultConfig())
	ab := m.Indicators["a"]
	ba := m.Indicators["b"]
	if len(ab) != 1 || len(ba) != 1 {
		t.Fatalf("indicators: a=%v b=%v", ab, ba)
	}
	if ab[0].Item != "b" || ba[0].Item != "a" {
		t.Errorf("asymmetric correlation: a=%v b=%v", ab, ba)
	}
	if math.Abs(ab[0].LLR-ba[0].LLR) > 1e-9 {
		t.Errorf("asymmetric LLR: %v vs %v", ab[0].LLR, ba[0].LLR)
	}
}

func TestTrainScalesToRealisticWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// A down-scaled MovieLens-shaped load: confirm the trainer handles
	// it and produces a model covering popular items.
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.2, 1, 999)
	var events []Event
	for i := 0; i < 50000; i++ {
		u := fmt.Sprintf("u%d", rng.Intn(500))
		it := fmt.Sprintf("i%d", zipf.Uint64())
		events = append(events, ev(u, it))
	}
	cfg := DefaultConfig()
	cfg.MaxInteractionsPerUser = 100
	m := Train(events, cfg)
	if len(m.Indicators) == 0 {
		t.Fatal("no indicators learned from realistic workload")
	}
	// The single most popular item may be near-ubiquitous (LLR correctly
	// scores a held-by-everyone item as uninformative), but among the
	// top-20 popular items most must have learned indicators.
	withIndicators := 0
	for _, it := range m.PopularItems(20) {
		if len(m.TopIndicators(it, 10)) > 0 {
			withIndicators++
		}
	}
	if withIndicators < 10 {
		t.Errorf("only %d of the top-20 popular items have indicators", withIndicators)
	}
}
