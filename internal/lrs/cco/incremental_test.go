package cco

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randomStream builds a deterministic event stream with heavy duplication
// (to exercise dedup) over a small universe (to force window evictions
// under tiny MaxInteractionsPerUser).
func randomStream(seed int64, n, users, items int) []Event {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]Event, n)
	for i := range evs {
		evs[i] = Event{
			User: fmt.Sprintf("u%02d", rng.Intn(users)),
			Item: fmt.Sprintf("i%02d", rng.Intn(items)),
		}
	}
	return evs
}

// TestIncrementalConvergesToBatch is the convergence property test: for a
// matrix of stream shapes and configs, applying events one at a time
// yields — at every checkpoint prefix — a model deeply equal (including
// bitwise-equal LLR scores) to batch Train over the same prefix.
func TestIncrementalConvergesToBatch(t *testing.T) {
	cfgs := []Config{
		{MaxInteractionsPerUser: 3, MaxCorrelatorsPerItem: 2},             // constant evictions, tight rows
		{MaxInteractionsPerUser: 5, MaxCorrelatorsPerItem: 50},            // uncapped rows
		{MaxInteractionsPerUser: 4, MaxCorrelatorsPerItem: 3, MinLLR: .5}, // significance filtering
		{}, // defaults: no evictions at this scale
	}
	for seed := int64(1); seed <= 4; seed++ {
		for ci, cfg := range cfgs {
			t.Run(fmt.Sprintf("seed%d_cfg%d", seed, ci), func(t *testing.T) {
				events := randomStream(seed, 400, 6, 12)
				inc := NewIncremental(cfg)
				for i, ev := range events {
					inc.Apply(ev)
					// Checkpoints: a scattering of prefixes plus the full
					// stream; every one must match batch exactly.
					if (i+1)%97 != 0 && i != len(events)-1 {
						continue
					}
					want := Train(events[:i+1], cfg)
					got := inc.Model()
					if !reflect.DeepEqual(got.Indicators, want.Indicators) {
						t.Fatalf("prefix %d: indicators diverged\nincremental: %v\nbatch: %v", i+1, got.Indicators, want.Indicators)
					}
					if !reflect.DeepEqual(got.Popularity, want.Popularity) {
						t.Fatalf("prefix %d: popularity diverged\nincremental: %v\nbatch: %v", i+1, got.Popularity, want.Popularity)
					}
					if got.Users != want.Users {
						t.Fatalf("prefix %d: users %d, batch %d", i+1, got.Users, want.Users)
					}
				}
			})
		}
	}
}

// TestIncrementalRowUpdatesMatchBatchRows checks the online re-scoring
// path: every row Apply returns must equal the corresponding row of the
// batch model over the same prefix (or be empty exactly when batch has no
// row for that item).
func TestIncrementalRowUpdatesMatchBatchRows(t *testing.T) {
	cfg := Config{MaxInteractionsPerUser: 3, MaxCorrelatorsPerItem: 2}
	events := randomStream(7, 250, 5, 10)
	inc := NewIncremental(cfg)
	for i, ev := range events {
		updates := inc.Apply(ev)
		batch := Train(events[:i+1], cfg)
		for _, up := range updates {
			want := batch.Indicators[up.Item]
			if len(up.Indicators) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(up.Indicators, want) {
				t.Fatalf("event %d: row %q = %v, batch %v", i, up.Item, up.Indicators, want)
			}
		}
	}
}

func TestIncrementalDuplicateIsNoop(t *testing.T) {
	inc := NewIncremental(Config{MaxInteractionsPerUser: 4, MaxCorrelatorsPerItem: 4})
	if got := inc.Apply(Event{User: "u", Item: "a"}); len(got) != 1 || got[0].Item != "a" {
		t.Fatalf("first apply updates = %v", got)
	}
	if got := inc.Apply(Event{User: "u", Item: "a"}); got != nil {
		t.Fatalf("duplicate apply returned %v, want nil", got)
	}
	if users, items, _ := inc.Counts(); users != 1 || items != 1 {
		t.Fatalf("counts after dup = (%d users, %d items)", users, items)
	}
	if inc.Applied() != 2 {
		t.Fatalf("applied = %d, want 2 (duplicates count as processed)", inc.Applied())
	}
}

// TestIncrementalEvictionDropsItem pins the sliding-window bookkeeping:
// once every window referencing an item has evicted it, the item vanishes
// from popularity and co-occurrence — no zombie zero-count entries.
func TestIncrementalEvictionDropsItem(t *testing.T) {
	inc := NewIncremental(Config{MaxInteractionsPerUser: 2, MaxCorrelatorsPerItem: 10})
	for _, it := range []string{"a", "b", "c", "d"} {
		inc.Apply(Event{User: "u", Item: it})
	}
	m := inc.Model()
	if _, ok := m.Popularity["a"]; ok {
		t.Fatalf("evicted item still popular: %v", m.Popularity)
	}
	if _, ok := m.Indicators["a"]; ok {
		t.Fatalf("evicted item still has indicators: %v", m.Indicators)
	}
	want := Train([]Event{{"u", "a"}, {"u", "b"}, {"u", "c"}, {"u", "d"}}, Config{MaxInteractionsPerUser: 2, MaxCorrelatorsPerItem: 10})
	if !reflect.DeepEqual(m.Indicators, want.Indicators) || !reflect.DeepEqual(m.Popularity, want.Popularity) {
		t.Fatalf("post-eviction model diverged from batch:\nincremental %v / %v\nbatch %v / %v",
			m.Indicators, m.Popularity, want.Indicators, want.Popularity)
	}
}

func TestIncrementalPopularItems(t *testing.T) {
	inc := NewIncremental(DefaultConfig())
	for _, ev := range []Event{{"u1", "a"}, {"u2", "a"}, {"u3", "a"}, {"u1", "b"}, {"u2", "b"}, {"u1", "c"}} {
		inc.Apply(ev)
	}
	got := inc.PopularItems(2)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("popular = %v, want [a b]", got)
	}
}
