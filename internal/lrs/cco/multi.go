package cco

import (
	"sort"
)

// multi.go implements the "cross" in Correlated Cross-Occurrence: beyond
// co-occurrence of the primary indicator with itself, CCO correlates the
// primary indicator (e.g. purchases) with *secondary* indicators (views,
// likes, category accesses …), so that any user action predictive of the
// primary one contributes to recommendations. This is the Universal
// Recommender's defining feature ("CCO aggregates indicators … and builds
// profiles", §7 of the PProx paper); the single-indicator Train in cco.go
// is its special case.

// TypedEvent is one interaction with an indicator type.
type TypedEvent struct {
	User string
	Item string
	// Type names the indicator; the empty string is the primary.
	Type string
}

// MultiModel holds, for each item, correlated items per indicator type:
// Fields[item][type] lists the type-indicator items whose occurrence in a
// user's history predicts interaction with item.
type MultiModel struct {
	// Primary is the primary-indicator model (co-occurrence of the
	// primary with itself), including popularity for cold start.
	Primary *Model
	// Cross maps indicator type → item → correlated secondary items.
	Cross map[string]map[string][]Correlation
}

// TrainMulti builds a full CCO model: the primary indicator correlates
// with itself (classic co-occurrence) and with every secondary indicator
// type present in the events (cross-occurrence). Per-type histories are
// downsampled independently, as in Mahout.
func TrainMulti(events []TypedEvent, cfg Config) *MultiModel {
	if cfg.MaxInteractionsPerUser <= 0 {
		cfg.MaxInteractionsPerUser = DefaultConfig().MaxInteractionsPerUser
	}
	if cfg.MaxCorrelatorsPerItem <= 0 {
		cfg.MaxCorrelatorsPerItem = DefaultConfig().MaxCorrelatorsPerItem
	}

	// Split the stream: primary events drive the classic model; each
	// secondary type gets its own user→items history.
	var primary []Event
	secondaryHist := make(map[string]map[string][]string) // type → user → items
	secondarySeen := make(map[string]map[[2]string]bool)
	for _, ev := range events {
		if ev.Type == "" {
			primary = append(primary, Event{User: ev.User, Item: ev.Item})
			continue
		}
		hist, ok := secondaryHist[ev.Type]
		if !ok {
			hist = make(map[string][]string)
			secondaryHist[ev.Type] = hist
			secondarySeen[ev.Type] = make(map[[2]string]bool)
		}
		key := [2]string{ev.User, ev.Item}
		if secondarySeen[ev.Type][key] {
			continue
		}
		secondarySeen[ev.Type][key] = true
		hist[ev.User] = append(hist[ev.User], ev.Item)
	}

	m := &MultiModel{
		Primary: Train(primary, cfg),
		Cross:   make(map[string]map[string][]Correlation, len(secondaryHist)),
	}

	// Primary histories (deduplicated, downsampled) for cross counting.
	primaryHist := make(map[string][]string)
	{
		seen := make(map[[2]string]bool, len(primary))
		for _, ev := range primary {
			key := [2]string{ev.User, ev.Item}
			if seen[key] {
				continue
			}
			seen[key] = true
			primaryHist[ev.User] = append(primaryHist[ev.User], ev.Item)
		}
		for u, h := range primaryHist {
			if len(h) > cfg.MaxInteractionsPerUser {
				primaryHist[u] = h[len(h)-cfg.MaxInteractionsPerUser:]
			}
		}
	}

	// Total population for the LLR margins: any user with a primary or
	// secondary interaction.
	for typ, hist := range secondaryHist {
		for u, h := range hist {
			if len(h) > cfg.MaxInteractionsPerUser {
				hist[u] = h[len(h)-cfg.MaxInteractionsPerUser:]
			}
		}
		m.Cross[typ] = crossOccurrence(primaryHist, hist, cfg)
	}
	return m
}

// crossOccurrence scores, for each primary item A and secondary item B,
// how significantly "users who did B (secondary) also did A (primary)"
// deviates from chance.
func crossOccurrence(primaryHist, secondaryHist map[string][]string, cfg Config) map[string][]Correlation {
	// Universe: users appearing in either history.
	users := make(map[string]bool, len(primaryHist)+len(secondaryHist))
	for u := range primaryHist {
		users[u] = true
	}
	for u := range secondaryHist {
		users[u] = true
	}
	total := len(users)

	primaryCount := make(map[string]int)
	for _, h := range primaryHist {
		for _, it := range h {
			primaryCount[it]++
		}
	}
	secondaryCount := make(map[string]int)
	for _, h := range secondaryHist {
		for _, it := range h {
			secondaryCount[it]++
		}
	}

	// k11 per (primary item, secondary item): users with both.
	cooc := make(map[string]map[string]int)
	for u, ph := range primaryHist {
		sh := secondaryHist[u]
		if len(sh) == 0 {
			continue
		}
		for _, a := range ph {
			row, ok := cooc[a]
			if !ok {
				row = make(map[string]int)
				cooc[a] = row
			}
			for _, b := range sh {
				row[b]++
			}
		}
	}

	out := make(map[string][]Correlation, len(cooc))
	for a, row := range cooc {
		cs := make([]Correlation, 0, len(row))
		for b, k11 := range row {
			score := LLR(k11, primaryCount[a], secondaryCount[b], total)
			if score <= cfg.MinLLR {
				continue
			}
			cs = append(cs, Correlation{Item: b, LLR: score})
		}
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].LLR != cs[j].LLR {
				return cs[i].LLR > cs[j].LLR
			}
			return cs[i].Item < cs[j].Item
		})
		if len(cs) > cfg.MaxCorrelatorsPerItem {
			cs = cs[:cfg.MaxCorrelatorsPerItem]
		}
		if len(cs) > 0 {
			out[a] = cs
		}
	}
	return out
}

// CrossIndicators returns up to n secondary items of the given type
// correlated with a primary item, strongest first.
func (m *MultiModel) CrossIndicators(item, typ string, n int) []string {
	cs := m.Cross[typ][item]
	if len(cs) == 0 {
		return nil
	}
	if n > len(cs) {
		n = len(cs)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = cs[i].Item
	}
	return out
}

// Types lists the secondary indicator types the model learned.
func (m *MultiModel) Types() []string {
	types := make([]string, 0, len(m.Cross))
	for t := range m.Cross {
		types = append(types, t)
	}
	sort.Strings(types)
	return types
}
