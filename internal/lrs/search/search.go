// Package search is the inverted-index retrieval engine backing the
// Universal Recommender substrate, standing in for the Elasticsearch
// instance that Harness uses to persist and query the recommendation model
// (§7 of the PProx paper).
//
// The Universal Recommender serves a query by scoring every item document
// against the user's interaction history: each item document carries an
// "indicators" field listing the items found correlated with it by CCO
// training, and the query is a boolean OR of the user's recent history
// terms. This package implements exactly that query model — multi-term OR
// queries with per-term boosts, TF-IDF-style scoring, must-not exclusion
// (the blacklist of already-seen items), and top-k retrieval.
package search

import (
	"container/heap"
	"math"
	"sort"
	"sync"
)

// Doc is one indexed document: an ID (the item identifier) and multi-valued
// string fields (e.g. "indicators" → correlated item IDs).
type Doc struct {
	ID     string
	Fields map[string][]string
}

// TermQuery matches documents containing Term in Field, contributing
// Boost × idf(Field, Term) × weight to the score.
type TermQuery struct {
	Field string
	Term  string
	Boost float64
}

// Query is a boolean query: documents matching at least one Should clause
// are candidates, scored by the sum of matching clauses; documents matching
// any MustNot clause are excluded.
type Query struct {
	Should  []TermQuery
	MustNot []TermQuery
	Size    int
}

// Hit is one scored result.
type Hit struct {
	ID    string
	Score float64
}

type posting struct {
	docID  string
	weight float64 // per-document term weight (stored at Put time)
}

// Index is an in-memory inverted index. It is safe for concurrent use;
// writes (Put/Delete) take an exclusive lock, queries share a read lock —
// the same single-writer/concurrent-reader regime an Elasticsearch shard
// provides between refreshes.
type Index struct {
	mu       sync.RWMutex
	postings map[string]map[string][]posting // field → term → postings
	docs     map[string]Doc
}

// NewIndex creates an empty index.
func NewIndex() *Index {
	return &Index{
		postings: make(map[string]map[string][]posting),
		docs:     make(map[string]Doc),
	}
}

// Put indexes a document, replacing any previous document with the same
// ID. Term weight within a document is 1/√(field length), the standard
// length norm, so items with sparse indicator lists are not drowned out.
func (ix *Index) Put(doc Doc) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, exists := ix.docs[doc.ID]; exists {
		ix.removeLocked(doc.ID)
	}
	cp := Doc{ID: doc.ID, Fields: make(map[string][]string, len(doc.Fields))}
	for f, terms := range doc.Fields {
		cp.Fields[f] = append([]string(nil), terms...)
	}
	ix.docs[doc.ID] = cp
	for field, terms := range cp.Fields {
		byTerm, ok := ix.postings[field]
		if !ok {
			byTerm = make(map[string][]posting)
			ix.postings[field] = byTerm
		}
		norm := 1.0
		if len(terms) > 0 {
			norm = 1 / math.Sqrt(float64(len(terms)))
		}
		seen := make(map[string]bool, len(terms))
		for _, term := range terms {
			if seen[term] {
				continue
			}
			seen[term] = true
			byTerm[term] = append(byTerm[term], posting{docID: doc.ID, weight: norm})
		}
	}
}

// Delete removes a document; it reports whether it existed.
func (ix *Index) Delete(id string) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.docs[id]; !ok {
		return false
	}
	ix.removeLocked(id)
	return true
}

func (ix *Index) removeLocked(id string) {
	doc := ix.docs[id]
	delete(ix.docs, id)
	for field, terms := range doc.Fields {
		byTerm := ix.postings[field]
		seen := make(map[string]bool, len(terms))
		for _, term := range terms {
			if seen[term] {
				continue
			}
			seen[term] = true
			ps := byTerm[term]
			for i := range ps {
				if ps[i].docID == id {
					byTerm[term] = append(ps[:i], ps[i+1:]...)
					break
				}
			}
			if len(byTerm[term]) == 0 {
				delete(byTerm, term)
			}
		}
	}
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// Get returns an indexed document by ID.
func (ix *Index) Get(id string) (Doc, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	d, ok := ix.docs[id]
	if !ok {
		return Doc{}, false
	}
	cp := Doc{ID: d.ID, Fields: make(map[string][]string, len(d.Fields))}
	for f, ts := range d.Fields {
		cp.Fields[f] = append([]string(nil), ts...)
	}
	return cp, true
}

// Search runs a boolean OR query and returns the top Size hits by
// descending score (ties broken by ascending ID for determinism).
func (ix *Index) Search(q Query) []Hit {
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	if q.Size <= 0 || len(q.Should) == 0 {
		return nil
	}

	excluded := make(map[string]bool)
	for _, mn := range q.MustNot {
		for _, p := range ix.postings[mn.Field][mn.Term] {
			excluded[p.docID] = true
		}
	}

	n := float64(len(ix.docs))
	scores := make(map[string]float64)
	for _, tq := range q.Should {
		ps := ix.postings[tq.Field][tq.Term]
		if len(ps) == 0 {
			continue
		}
		boost := tq.Boost
		if boost == 0 {
			boost = 1
		}
		idf := math.Log1p(n / float64(len(ps)))
		for _, p := range ps {
			if excluded[p.docID] {
				continue
			}
			scores[p.docID] += boost * idf * p.weight
		}
	}

	return topK(scores, q.Size)
}

// hitHeap is a min-heap of the current top-k hits.
type hitHeap []Hit

func (h hitHeap) Len() int { return len(h) }
func (h hitHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].ID > h[j].ID // worst tie (largest ID) at the top
}
func (h hitHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *hitHeap) Push(x any)   { *h = append(*h, x.(Hit)) }
func (h *hitHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

func topK(scores map[string]float64, k int) []Hit {
	h := make(hitHeap, 0, k+1)
	for id, score := range scores {
		heap.Push(&h, Hit{ID: id, Score: score})
		if len(h) > k {
			heap.Pop(&h)
		}
	}
	out := []Hit(h)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}
