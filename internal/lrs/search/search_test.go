package search

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func indicators(items ...string) map[string][]string {
	return map[string][]string{"indicators": items}
}

func should(terms ...string) []TermQuery {
	qs := make([]TermQuery, len(terms))
	for i, t := range terms {
		qs[i] = TermQuery{Field: "indicators", Term: t}
	}
	return qs
}

func TestPutGetDelete(t *testing.T) {
	ix := NewIndex()
	ix.Put(Doc{ID: "a", Fields: indicators("x", "y")})
	if ix.Len() != 1 {
		t.Fatalf("Len = %d", ix.Len())
	}
	d, ok := ix.Get("a")
	if !ok || len(d.Fields["indicators"]) != 2 {
		t.Fatalf("Get = %+v, %v", d, ok)
	}
	if !ix.Delete("a") {
		t.Fatal("Delete missed existing doc")
	}
	if ix.Delete("a") {
		t.Fatal("second Delete succeeded")
	}
	if ix.Len() != 0 {
		t.Errorf("Len = %d after delete", ix.Len())
	}
	if hits := ix.Search(Query{Should: should("x"), Size: 5}); len(hits) != 0 {
		t.Errorf("deleted doc still matches: %v", hits)
	}
}

func TestPutReplacesDocument(t *testing.T) {
	ix := NewIndex()
	ix.Put(Doc{ID: "a", Fields: indicators("old")})
	ix.Put(Doc{ID: "a", Fields: indicators("new")})
	if hits := ix.Search(Query{Should: should("old"), Size: 5}); len(hits) != 0 {
		t.Errorf("stale posting survives replacement: %v", hits)
	}
	if hits := ix.Search(Query{Should: should("new"), Size: 5}); len(hits) != 1 {
		t.Errorf("replacement not indexed: %v", hits)
	}
	if ix.Len() != 1 {
		t.Errorf("Len = %d", ix.Len())
	}
}

func TestSearchORSemantics(t *testing.T) {
	ix := NewIndex()
	ix.Put(Doc{ID: "a", Fields: indicators("x")})
	ix.Put(Doc{ID: "b", Fields: indicators("y")})
	ix.Put(Doc{ID: "c", Fields: indicators("z")})
	hits := ix.Search(Query{Should: should("x", "y"), Size: 10})
	ids := hitIDs(hits)
	if len(ids) != 2 || !ids["a"] || !ids["b"] {
		t.Errorf("OR query hits = %v", hits)
	}
}

func TestSearchScoresMultiTermMatchesHigher(t *testing.T) {
	ix := NewIndex()
	// "both" matches two history terms, "one" matches a single term.
	ix.Put(Doc{ID: "both", Fields: indicators("h1", "h2")})
	ix.Put(Doc{ID: "one", Fields: indicators("h1", "zz")})
	hits := ix.Search(Query{Should: should("h1", "h2"), Size: 10})
	if len(hits) != 2 {
		t.Fatalf("hits = %v", hits)
	}
	if hits[0].ID != "both" {
		t.Errorf("top hit = %v, want doc matching more history terms", hits[0])
	}
	if hits[0].Score <= hits[1].Score {
		t.Errorf("scores not ordered: %v", hits)
	}
}

func TestSearchIDFPrefersRareTerms(t *testing.T) {
	ix := NewIndex()
	// "common" appears in many docs, "rare" in one; a doc matching the
	// rare term should outrank a doc matching only the common term.
	for i := 0; i < 20; i++ {
		ix.Put(Doc{ID: fmt.Sprintf("noise-%02d", i), Fields: indicators("common")})
	}
	ix.Put(Doc{ID: "special", Fields: indicators("rare")})
	hits := ix.Search(Query{Should: should("common", "rare"), Size: 3})
	if hits[0].ID != "special" {
		t.Errorf("top hit = %v, want the rare-term match", hits[0])
	}
}

func TestSearchMustNotExcludes(t *testing.T) {
	ix := NewIndex()
	ix.Put(Doc{ID: "a", Fields: map[string][]string{"indicators": {"x"}, "id": {"a"}}})
	ix.Put(Doc{ID: "b", Fields: map[string][]string{"indicators": {"x"}, "id": {"b"}}})
	hits := ix.Search(Query{
		Should:  should("x"),
		MustNot: []TermQuery{{Field: "id", Term: "a"}},
		Size:    10,
	})
	ids := hitIDs(hits)
	if ids["a"] || !ids["b"] {
		t.Errorf("must-not exclusion broken: %v", hits)
	}
}

func TestSearchBoost(t *testing.T) {
	ix := NewIndex()
	ix.Put(Doc{ID: "a", Fields: indicators("x")})
	ix.Put(Doc{ID: "b", Fields: indicators("y")})
	hits := ix.Search(Query{
		Should: []TermQuery{
			{Field: "indicators", Term: "x", Boost: 1},
			{Field: "indicators", Term: "y", Boost: 10},
		},
		Size: 10,
	})
	if len(hits) != 2 || hits[0].ID != "b" {
		t.Errorf("boost ignored: %v", hits)
	}
}

func TestSearchSizeLimitsAndDeterministicOrder(t *testing.T) {
	ix := NewIndex()
	for i := 0; i < 50; i++ {
		ix.Put(Doc{ID: fmt.Sprintf("d%02d", i), Fields: indicators("x")})
	}
	hits := ix.Search(Query{Should: should("x"), Size: 7})
	if len(hits) != 7 {
		t.Fatalf("got %d hits, want 7", len(hits))
	}
	// Equal scores: ties broken by ascending ID, so the result is the
	// lexicographically first 7 IDs.
	for i, h := range hits {
		want := fmt.Sprintf("d%02d", i)
		if h.ID != want {
			t.Errorf("hit[%d] = %s, want %s", i, h.ID, want)
		}
	}
	again := ix.Search(Query{Should: should("x"), Size: 7})
	for i := range hits {
		if hits[i] != again[i] {
			t.Fatal("search is not deterministic")
		}
	}
}

func TestSearchEmptyCases(t *testing.T) {
	ix := NewIndex()
	ix.Put(Doc{ID: "a", Fields: indicators("x")})
	if hits := ix.Search(Query{Should: should("x"), Size: 0}); hits != nil {
		t.Errorf("Size=0 returned %v", hits)
	}
	if hits := ix.Search(Query{Size: 5}); hits != nil {
		t.Errorf("no Should clauses returned %v", hits)
	}
	if hits := ix.Search(Query{Should: should("absent"), Size: 5}); len(hits) != 0 {
		t.Errorf("absent term returned %v", hits)
	}
}

func TestLengthNormPrefersFocusedDocs(t *testing.T) {
	ix := NewIndex()
	long := make([]string, 100)
	for i := range long {
		long[i] = fmt.Sprintf("t%d", i)
	}
	long[0] = "x"
	ix.Put(Doc{ID: "diluted", Fields: indicators(long...)})
	ix.Put(Doc{ID: "focused", Fields: indicators("x")})
	hits := ix.Search(Query{Should: should("x"), Size: 2})
	if len(hits) != 2 || hits[0].ID != "focused" {
		t.Errorf("length norm not applied: %v", hits)
	}
}

func TestTopKProperty(t *testing.T) {
	// topK must return the k highest-scoring entries in order.
	f := func(raw []uint16, kRaw uint8) bool {
		scores := make(map[string]float64, len(raw))
		for i, v := range raw {
			scores[fmt.Sprintf("d%04d", i)] = float64(v)
		}
		k := int(kRaw)%10 + 1
		got := topK(scores, k)

		all := make([]Hit, 0, len(scores))
		for id, s := range scores {
			all = append(all, Hit{ID: id, Score: s})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].Score != all[j].Score {
				return all[i].Score > all[j].Score
			}
			return all[i].ID < all[j].ID
		})
		want := all
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConcurrentReadWrite(t *testing.T) {
	ix := NewIndex()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ix.Put(Doc{ID: fmt.Sprintf("g%d-%d", g, i), Fields: indicators("x")})
				ix.Search(Query{Should: should("x"), Size: 5})
			}
		}(g)
	}
	wg.Wait()
	if ix.Len() != 400 {
		t.Errorf("Len = %d, want 400", ix.Len())
	}
}

func hitIDs(hits []Hit) map[string]bool {
	ids := make(map[string]bool, len(hits))
	for _, h := range hits {
		ids[h.ID] = true
	}
	return ids
}
