package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"pprox/internal/lrs/store"
)

// repseudo.go implements rotation-scale re-pseudonymization as a
// background, shard-at-a-time job. The key-rotation breach response
// (§2.3 footnote 1 of the PProx paper: "downloading the LRS state for
// local re-encryption before re-uploading it") previously rewrote the
// whole event log under one lock; at 10× MovieLens cardinality that
// stop-the-world pause is exactly what an elastic deployment cannot
// afford. The job instead stages one shard at a time while the engine
// keeps serving, diverting inserts racing with a staged shard into a
// journal that is replayed — transformed — at the atomic apply step.
//
// Fail-closed: if the mapping fails for any stored document, nothing is
// replaced, journaled inserts are flushed back raw, and the error
// surfaces through Wait. The auditor's breach state is cleared only
// after Wait returns success (see rotation.Countermeasure), so a failed
// or partial rotation keeps the deployment marked breached.

// ErrRepseudoActive reports that a re-pseudonymization job is already
// running; the engine runs at most one at a time.
var ErrRepseudoActive = errors.New("engine: re-pseudonymization already running")

// RepseudoJob is one background re-pseudonymization pass over the event
// log.
type RepseudoJob struct {
	e     *Engine
	field string
	mapFn func(string) (string, error)

	mu       sync.Mutex
	staged   []bool              // shard i's contents are being rewritten
	journal  []map[string]string // inserts diverted while their shard was staged
	finished bool                // apply done: inserts go straight to the log again

	migrated   atomic.Uint64
	shardsDone atomic.Uint64

	err  error // set before done closes
	done chan struct{}
}

// Repseudonymize starts a background job rewriting the given pseudonym
// field ("user" or "item") of every stored event through mapFn. Serving
// continues throughout; posts racing with a staged shard are journaled
// and folded in at the apply step. On success the job finishes with a
// full retrain, so the served model speaks the new pseudonym space.
// A second concurrent job is refused with ErrRepseudoActive.
func (e *Engine) Repseudonymize(field string, mapFn func(string) (string, error)) (*RepseudoJob, error) {
	if field != "user" && field != "item" {
		return nil, fmt.Errorf("engine: cannot re-pseudonymize field %q", field)
	}
	job := &RepseudoJob{
		e:      e,
		field:  field,
		mapFn:  mapFn,
		staged: make([]bool, e.log.NumShards()),
		done:   make(chan struct{}),
	}
	if !e.repseudo.CompareAndSwap(nil, job) {
		return nil, ErrRepseudoActive
	}
	e.repseudoRuns.Add(1)
	go job.run()
	return job, nil
}

// RepseudoActive reports whether a re-pseudonymization job is running.
func (e *Engine) RepseudoActive() bool { return e.repseudo.Load() != nil }

// RepseudoStats reports lifetime job counters: runs started, failures,
// and events migrated.
func (e *Engine) RepseudoStats() (runs, failures, migrated uint64) {
	return e.repseudoRuns.Load(), e.repseudoFailures.Load(), e.repseudoMigrated.Load()
}

// RepseudoProgress reports the running job's shard progress as
// (done, total); (0, 0) when no job is active.
func (e *Engine) RepseudoProgress() (done, total int) {
	job := e.repseudo.Load()
	if job == nil {
		return 0, 0
	}
	return int(job.shardsDone.Load()), len(job.staged)
}

// Wait blocks until the job (including its final retrain) completes and
// returns its error.
func (j *RepseudoJob) Wait() error {
	<-j.done
	return j.err
}

// Done reports completion without blocking.
func (j *RepseudoJob) Done() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// Migrated returns how many stored events the job has rewritten so far.
func (j *RepseudoJob) Migrated() uint64 { return j.migrated.Load() }

// insertOrJournal is the insert path while the job is live, called with
// e.applyMu held. An insert routed to a shard whose contents are staged
// for replacement would be silently lost by the swap — those are
// journaled (with their original pseudonyms) and replayed transformed at
// the apply step. Everything else goes straight to the log. The staged
// check and the divert happen under one lock acquisition, so a shard
// cannot become staged between them.
func (j *RepseudoJob) insertOrJournal(fields map[string]string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.finished {
		if target := j.e.log.Owner(fields[store.RouteField]); j.staged[target] {
			cp := make(map[string]string, len(fields))
			for k, v := range fields {
				cp[k] = v
			}
			j.journal = append(j.journal, cp)
			return nil
		}
	}
	_, err := j.e.log.Insert(fields)
	return err
}

// transform rewrites one event's pseudonym field and returns the new
// fields plus the shard the rewritten event routes to. Rotating the user
// layer moves the event to the shard owning the *new* user pseudonym;
// rotating the item layer leaves routing unchanged.
func (j *RepseudoJob) transform(fields map[string]string) (map[string]string, int, error) {
	out := make(map[string]string, len(fields))
	for k, v := range fields {
		out[k] = v
	}
	fresh, err := j.mapFn(fields[j.field])
	if err != nil {
		return nil, 0, fmt.Errorf("re-pseudonymize %s %q…: %w", j.field, head(fields[j.field]), err)
	}
	out[j.field] = fresh
	return out, j.e.log.Owner(out[store.RouteField]), nil
}

// head truncates a pseudonym for error messages — enough to locate the
// record, not enough to be a useful ciphertext.
func head(s string) string {
	if len(s) > 8 {
		return s[:8]
	}
	return s
}

func (j *RepseudoJob) run() {
	err := j.migrate()
	if err != nil {
		j.e.repseudoFailures.Add(1)
		// Abort: nothing was replaced (migrate fails closed before the
		// apply step, and a failed apply surfaces the storage error), so
		// flush the diverted inserts back raw — they still carry the
		// pseudonyms the rest of the log speaks. applyMu keeps a train or
		// snapshot from scanning the log mid-flush (lock order matches the
		// insert path: applyMu, then j.mu).
		j.e.applyMu.Lock()
		j.mu.Lock()
		journal := j.journal
		j.journal = nil
		j.finished = true
		j.mu.Unlock()
		for _, fields := range journal {
			if _, insErr := j.e.log.Insert(fields); insErr != nil && err == nil {
				err = insErr
			}
		}
		j.e.applyMu.Unlock()
	} else {
		err = j.e.TrainNow()
	}
	j.err = err
	j.e.repseudo.Store(nil)
	close(j.done)
}

// migrate is the two-phase body: stage every shard (scan + transform into
// per-target buckets), then atomically apply (replace every shard and
// replay the journal transformed).
func (j *RepseudoJob) migrate() error {
	e := j.e
	n := e.log.NumShards()
	buckets := make([][]map[string]string, n)

	// Phase A — stage shard by shard. A shard is marked staged *before*
	// its scan starts: from that moment inserts routed to it are
	// journaled, so scan + journal together cover every accepted event.
	for i := 0; i < n; i++ {
		j.mu.Lock()
		j.staged[i] = true
		j.mu.Unlock()

		var scanErr error
		e.log.ScanShard(i, func(d store.Document) bool {
			out, target, err := j.transform(d.Fields)
			if err != nil {
				scanErr = err
				return false
			}
			buckets[target] = append(buckets[target], out)
			j.migrated.Add(1)
			e.repseudoMigrated.Add(1)
			return true
		})
		if scanErr != nil {
			return scanErr
		}
		j.shardsDone.Add(1)
	}

	// Phase B — apply. e.applyMu excludes everything that reads the log
	// whole — TrainNow's scan, Refresh, SaveSnapshot — for the duration
	// of the swap: a half-replaced log mixes old and new pseudonym
	// spaces, and a snapshot captured in that window would be permanently
	// mixed. The job lock (acquired after applyMu, matching the insert
	// path's order) keeps inserts from interleaving: every shard's
	// contents are swapped for its bucket, then the journal is replayed
	// through the transform. Appending journaled events after the
	// bucketed ones preserves per-user order — they arrived after the
	// staging scan read their shard.
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	j.mu.Lock()
	defer j.mu.Unlock()
	for i := 0; i < n; i++ {
		if err := e.log.ReplaceShard(i, buckets[i]); err != nil {
			return err
		}
	}
	for _, fields := range j.journal {
		out, _, err := j.transform(fields)
		if err != nil {
			return err
		}
		if _, err := e.log.Insert(out); err != nil {
			return err
		}
		j.migrated.Add(1)
		e.repseudoMigrated.Add(1)
	}
	j.journal = nil
	j.finished = true
	return nil
}
