package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pprox/internal/lrs/cco"
)

// tinyTrainer forces window evictions and row caps at test scale.
func tinyTrainer() cco.Config {
	return cco.Config{MaxInteractionsPerUser: 5, MaxCorrelatorsPerItem: 5}
}

// feedStream posts a deterministic event stream to every given engine.
func feedStream(seed int64, n, users, items int, engines ...*Engine) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		u := fmt.Sprintf("user-%02d", rng.Intn(users))
		it := fmt.Sprintf("item-%02d", rng.Intn(items))
		for _, e := range engines {
			e.InsertEvent(u, it, "")
		}
	}
}

// TestIncrementalEngineMatchesBatchEngine: an engine that never batch
// trains — it only folds events in online — recommends exactly what a
// batch-trained twin does, once Refresh has re-scored the rows whose
// counts never changed after the population shifted.
func TestIncrementalEngineMatchesBatchEngine(t *testing.T) {
	cfgInc := DefaultConfig()
	cfgInc.Trainer = tinyTrainer()
	cfgInc.Incremental = true
	cfgInc.Shards = 3
	inc := New(cfgInc)

	cfgBatch := DefaultConfig()
	cfgBatch.Trainer = tinyTrainer()
	cfgBatch.Shards = 3
	batch := New(cfgBatch)

	feedStream(11, 600, 8, 15, inc, batch)
	if err := batch.TrainNow(); err != nil {
		t.Fatal(err)
	}
	inc.Refresh()

	for u := 0; u < 8; u++ {
		user := fmt.Sprintf("user-%02d", u)
		got := inc.Recommend(user, 10)
		want := batch.Recommend(user, 10)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("user %s: incremental %v, batch %v", user, got, want)
		}
	}
	if got, want := inc.Recommend("cold-user", 5), batch.Recommend("cold-user", 5); !reflect.DeepEqual(got, want) {
		t.Fatalf("cold start: incremental %v, batch %v", got, want)
	}
	if inc.EventsApplied() != 600 {
		t.Fatalf("events applied = %d", inc.EventsApplied())
	}
	if inc.ApplySeconds() <= 0 {
		t.Fatal("apply seconds not recorded")
	}
}

// TestIncrementalServesWithoutTraining: freshness is the point of the
// online path — history-based recommendations appear with no TrainNow at
// all.
func TestIncrementalServesWithoutTraining(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trainer = tinyTrainer()
	cfg.Incremental = true
	e := New(cfg)
	// Two users sharing items a,b; one of them also accessed c.
	e.InsertEvent("u1", "a", "")
	e.InsertEvent("u1", "b", "")
	e.InsertEvent("u1", "c", "")
	e.InsertEvent("u2", "a", "")
	e.InsertEvent("u2", "b", "")

	recs := e.Recommend("u2", 3)
	if len(recs) == 0 || recs[0] != "c" {
		t.Fatalf("no fresh recommendation before any training: %v", recs)
	}
	_, _, trains := e.Stats()
	if trains != 0 {
		t.Fatalf("batch trained %d times", trains)
	}
}

// TestIncrementalSurvivesTrainNowReseed: TrainNow (the compaction
// fallback) reseeds the online counts; applying more events afterwards
// keeps converging instead of double-counting.
func TestIncrementalSurvivesTrainNowReseed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trainer = tinyTrainer()
	cfg.Incremental = true
	cfg.Shards = 2
	e := New(cfg)

	batchCfg := DefaultConfig()
	batchCfg.Trainer = tinyTrainer()
	batchCfg.Shards = 2
	twin := New(batchCfg)

	feedStream(3, 200, 5, 10, e, twin)
	if err := e.TrainNow(); err != nil {
		t.Fatal(err)
	}
	feedStream(4, 200, 5, 10, e, twin)

	if err := twin.TrainNow(); err != nil {
		t.Fatal(err)
	}
	e.Refresh()
	for u := 0; u < 5; u++ {
		user := fmt.Sprintf("user-%02d", u)
		if got, want := e.Recommend(user, 10), twin.Recommend(user, 10); !reflect.DeepEqual(got, want) {
			t.Fatalf("user %s after reseed: %v, twin %v", user, got, want)
		}
	}
}

// TestCrashRecoveryMatchesUncrashedTwin is the crash-recovery test: an
// LRS shard is killed mid-WAL-append (the torn frame a real kill leaves),
// the engine restarts, replays its WALs, and serves recommendations
// identical to a twin that never crashed.
func TestCrashRecoveryMatchesUncrashedTwin(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.Trainer = tinyTrainer()
	cfg.Shards = 4
	cfg.WALDir = dir
	cfg.Incremental = true
	crashed, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}

	twinCfg := cfg
	twinCfg.WALDir = "" // in-memory twin, same sharding
	twin := New(twinCfg)

	feedStream(21, 500, 10, 20, crashed, twin)

	// Kill: release the files without compacting, then tear one shard's
	// WAL tail as an interrupted append would.
	if err := crashed.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "shard-001.wal")
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	restarted, err := Open(cfg) // replays WALs, rebuilds the model
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()
	if restarted.EventCount() != twin.EventCount() {
		t.Fatalf("replayed %d events, twin has %d", restarted.EventCount(), twin.EventCount())
	}
	if err := twin.TrainNow(); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 10; u++ {
		user := fmt.Sprintf("user-%02d", u)
		got := restarted.Recommend(user, 10)
		want := twin.Recommend(user, 10)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("user %s: restarted %v, twin %v", user, got, want)
		}
	}
}

// TestDurableCompactThenRestart: Compact persists the shard snapshots; a
// restart replays nothing but still serves the same state.
func TestDurableCompactThenRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.Trainer = tinyTrainer()
	cfg.Shards = 2
	cfg.WALDir = dir
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feedStream(5, 120, 4, 8, e)
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	before := e.Recommend("user-00", 10)
	e.Close()

	// Every WAL is empty after compaction: state lives in the snapshots.
	for i := 0; i < 2; i++ {
		fi, err := os.Stat(filepath.Join(dir, fmt.Sprintf("shard-%03d.wal", i)))
		if err != nil || fi.Size() != 0 {
			t.Fatalf("shard %d WAL not truncated: %v %v", i, fi, err)
		}
	}

	e2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.EventCount() != 120 {
		t.Fatalf("restored %d events", e2.EventCount())
	}
	if got := e2.Recommend("user-00", 10); !reflect.DeepEqual(got, before) {
		t.Fatalf("post-compact restart: %v, want %v", got, before)
	}
}

// TestEngineSnapshotShardCountChange: a v2 snapshot written by a 3-shard
// engine restores into a 5-shard one — events re-route through the ring
// and the retrained model matches.
func TestEngineSnapshotShardCountChange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trainer = tinyTrainer()
	cfg.Shards = 3
	e := New(cfg)
	feedStream(9, 300, 6, 12, e)
	if err := e.TrainNow(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	cfg5 := cfg
	cfg5.Shards = 5
	e5, err := NewFromSnapshot(cfg5, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := e5.TrainNow(); err != nil {
		t.Fatal(err)
	}
	if e5.EventCount() != e.EventCount() {
		t.Fatalf("event counts differ: %d vs %d", e5.EventCount(), e.EventCount())
	}
	if e5.NumShards() != 5 {
		t.Fatalf("shards = %d", e5.NumShards())
	}
	for u := 0; u < 6; u++ {
		user := fmt.Sprintf("user-%02d", u)
		got := e5.Recommend(user, 10)
		want := e.Recommend(user, 10)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("user %s after reshard: %v, want %v", user, got, want)
		}
	}
}

// TestSaveSnapshotFileAtomic: the engine-level file save goes through the
// temp+rename path.
func TestSaveSnapshotFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lrs.snap")
	cfg := DefaultConfig()
	cfg.Shards = 2
	e := New(cfg)
	e.InsertEvent("u", "i", "")
	if err := e.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	e2, err := NewFromSnapshot(cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	if e2.EventCount() != 1 {
		t.Fatalf("restored %d events", e2.EventCount())
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("temp litter in %v", entries)
	}
}
