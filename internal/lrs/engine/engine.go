// Package engine assembles the legacy recommendation system (LRS): a
// Universal-Recommender-style engine equivalent to the Harness deployment
// the PProx paper integrates with (§7). Feedback events are persisted in
// the document store (the MongoDB substitute) as "inputs pending
// processing"; a batch training job (the Spark substitute) builds the CCO
// model; the model is served from the inverted index (the Elasticsearch
// substitute); and a REST front end exposes the post/get API that PProx
// proxies.
//
// The engine is agnostic to whether identifiers are cleartext or PProx
// pseudonyms — exactly the property that makes PProx transparent to an
// unmodified LRS.
package engine

import (
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"pprox/internal/lrs/cco"
	"pprox/internal/lrs/search"
	"pprox/internal/lrs/store"
	"pprox/internal/message"
	"pprox/internal/obslog"
)

// Config parameterizes the engine.
type Config struct {
	// DefaultN is the recommendation list size when a query does not
	// specify one; capped at message.MaxRecommendations.
	DefaultN int
	// MaxQueryHistory bounds how many recent user interactions form the
	// retrieval query.
	MaxQueryHistory int
	// MaxBlacklist bounds how many of the user's own items are excluded
	// from results (UR blacklists seen items by default).
	MaxBlacklist int
	// SecondaryBoost weights cross-indicator query clauses relative to
	// primary-indicator clauses (UR default: secondary events inform
	// but do not dominate).
	SecondaryBoost float64
	// Trainer bounds the CCO batch job.
	Trainer cco.Config
}

// DefaultConfig mirrors a stock Universal Recommender setup.
func DefaultConfig() Config {
	return Config{
		DefaultN:        message.MaxRecommendations,
		MaxQueryHistory: 20,
		MaxBlacklist:    100,
		SecondaryBoost:  0.5,
		Trainer:         cco.DefaultConfig(),
	}
}

// Engine is the LRS: event ingestion, batch training, and query serving.
type Engine struct {
	cfg    Config
	db     *store.Store
	events *store.Collection

	index atomic.Pointer[search.Index]
	model atomic.Pointer[cco.MultiModel]

	trainMu sync.Mutex // serializes batch training jobs

	posts   atomic.Uint64
	queries atomic.Uint64
	trains  atomic.Uint64
	dups    atomic.Uint64

	idem idemRegistry

	logger atomic.Pointer[slog.Logger]
}

// SetLogger installs the engine's structured logger. Ingest records wrap
// the pseudonymized identifiers in obslog typed secrets, so even the
// already-opaque det_enc pseudonyms render as salted hashes — log lines
// can never be joined against the LRS database or a network capture.
// Nil disables logging.
func (e *Engine) SetLogger(l *slog.Logger) { e.logger.Store(l) }

func (e *Engine) log() *slog.Logger { return e.logger.Load() }

// idemRegistry remembers recently seen idempotency keys so a retried
// insertion (the proxy resent an event whose reply was lost) is dropped
// instead of double-counted. It is a fixed-size FIFO window, not a durable
// log: retries arrive within seconds, the window holds the last
// idemWindow keys, and an unbounded map would be a memory leak with the
// same name.
type idemRegistry struct {
	mu   sync.Mutex
	seen map[string]struct{}
	ring []string
	next int
}

// idemWindow is how many recent keys the registry remembers.
const idemWindow = 1 << 16

// claim records a key, reporting false when it was already seen.
func (ir *idemRegistry) claim(key string) bool {
	ir.mu.Lock()
	defer ir.mu.Unlock()
	if ir.seen == nil {
		ir.seen = make(map[string]struct{}, idemWindow)
		ir.ring = make([]string, idemWindow)
	}
	if _, dup := ir.seen[key]; dup {
		return false
	}
	if old := ir.ring[ir.next]; old != "" {
		delete(ir.seen, old)
	}
	ir.ring[ir.next] = key
	ir.next = (ir.next + 1) % len(ir.ring)
	ir.seen[key] = struct{}{}
	return true
}

// New creates an engine with an empty model.
func New(cfg Config) *Engine {
	return newWithStore(cfg, store.New())
}

// NewFromSnapshot restores an engine from a store snapshot written by
// SaveSnapshot — the restart-with-persisted-inputs path a MongoDB-backed
// Harness deployment has. The model is not persisted; run TrainNow after
// loading, exactly as Harness rebuilds its model from stored inputs.
func NewFromSnapshot(cfg Config, r io.Reader) (*Engine, error) {
	db, err := store.LoadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return newWithStore(cfg, db), nil
}

func newWithStore(cfg Config, db *store.Store) *Engine {
	if cfg.DefaultN <= 0 || cfg.DefaultN > message.MaxRecommendations {
		cfg.DefaultN = message.MaxRecommendations
	}
	if cfg.MaxQueryHistory <= 0 {
		cfg.MaxQueryHistory = DefaultConfig().MaxQueryHistory
	}
	if cfg.MaxBlacklist < 0 {
		cfg.MaxBlacklist = 0
	}
	events := db.Collection("events")
	events.EnsureIndex("user")
	if cfg.SecondaryBoost <= 0 {
		cfg.SecondaryBoost = DefaultConfig().SecondaryBoost
	}
	e := &Engine{cfg: cfg, db: db, events: events}
	e.index.Store(search.NewIndex())
	e.model.Store(&cco.MultiModel{
		Primary: &cco.Model{
			Indicators: map[string][]cco.Correlation{},
			Popularity: map[string]int{},
		},
		Cross: map[string]map[string][]cco.Correlation{},
	})
	return e
}

// InsertEvent records primary-indicator feedback: user accessed item,
// with an optional payload (e.g. a rating) that collaborative filtering
// on access indicators stores but does not interpret.
func (e *Engine) InsertEvent(user, item, payload string) {
	e.InsertTypedEvent(user, item, payload, "")
}

// InsertTypedEvent records feedback with an explicit indicator type for
// Correlated Cross-Occurrence; the empty type is the primary indicator.
func (e *Engine) InsertTypedEvent(user, item, payload, eventType string) {
	e.InsertTypedEventIdem(user, item, payload, eventType, "")
}

// InsertTypedEventIdem records feedback carrying an idempotency key. A
// repeated key within the dedup window reports false and stores nothing —
// the retried delivery of an event the store already has. The empty key
// always stores (legacy clients and proxies without the feature).
func (e *Engine) InsertTypedEventIdem(user, item, payload, eventType, idem string) bool {
	e.posts.Add(1)
	if idem != "" && !e.idem.claim(idem) {
		e.dups.Add(1)
		if l := e.log(); l != nil {
			l.Debug("duplicate event dropped", "idem", idem)
		}
		return false
	}
	e.events.Insert(map[string]string{
		"user":    user,
		"item":    item,
		"payload": payload,
		"type":    eventType,
	})
	if l := e.log(); l != nil {
		l.Debug("event ingested",
			"user", obslog.Pseudonym(user), "item", obslog.Pseudonym(item),
			"type", eventType)
	}
	return true
}

// DupEvents reports how many insertions were dropped as idempotent
// duplicates.
func (e *Engine) DupEvents() uint64 { return e.dups.Load() }

// EventCount returns the number of stored feedback events.
func (e *Engine) EventCount() int { return e.events.Count() }

// TrainNow runs the batch training job: it snapshots the event log, builds
// a fresh CCO model, and atomically swaps in a new index — the same
// periodic-rebuild lifecycle as Harness running Apache Spark (§7). Queries
// keep being served from the previous model during training.
func (e *Engine) TrainNow() error {
	e.trainMu.Lock()
	defer e.trainMu.Unlock()
	start := time.Now()

	events := make([]cco.TypedEvent, 0, e.events.Count())
	e.events.Scan(func(d store.Document) bool {
		events = append(events, cco.TypedEvent{
			User: d.Fields["user"],
			Item: d.Fields["item"],
			Type: d.Fields["type"],
		})
		return true
	})

	model := cco.TrainMulti(events, e.cfg.Trainer)

	// One document per item carrying its primary indicators and one
	// cross-indicator field per secondary type — the Universal
	// Recommender's Elasticsearch document layout.
	idx := search.NewIndex()
	docs := make(map[string]search.Doc)
	docFor := func(item string) search.Doc {
		d, ok := docs[item]
		if !ok {
			d = search.Doc{ID: item, Fields: map[string][]string{"id": {item}}}
			docs[item] = d
		}
		return d
	}
	for item, correlations := range model.Primary.Indicators {
		terms := make([]string, len(correlations))
		for i, c := range correlations {
			terms[i] = c.Item
		}
		docFor(item).Fields["indicators"] = terms
	}
	for typ, byItem := range model.Cross {
		field := crossField(typ)
		for item, correlations := range byItem {
			terms := make([]string, len(correlations))
			for i, c := range correlations {
				terms[i] = c.Item
			}
			docFor(item).Fields[field] = terms
		}
	}
	for _, d := range docs {
		idx.Put(d)
	}

	e.model.Store(model)
	e.index.Store(idx)
	e.trains.Add(1)
	if l := e.log(); l != nil {
		l.Info("model trained",
			"events", len(events), "items", len(docs),
			"duration_ms", time.Since(start).Milliseconds())
	}
	return nil
}

// crossField names the index field holding cross-indicators of a type.
func crossField(typ string) string { return "indicators_" + typ }

// Recommend returns up to n item identifiers for the user, best first.
// The query model is the Universal Recommender's: the user's recent
// history items are OR-ed against every item's learned indicators; the
// user's own items are blacklisted; users without usable history receive
// the most popular items (cold start).
func (e *Engine) Recommend(user string, n int) []string {
	e.queries.Add(1)
	if n <= 0 || n > e.cfg.DefaultN {
		n = e.cfg.DefaultN
	}

	primary, byType := e.userHistory(user)
	model := e.model.Load()
	idx := e.index.Load()

	var recs []string
	if len(primary) > 0 || len(byType) > 0 {
		q := search.Query{Size: n}
		for _, item := range tail(primary, e.cfg.MaxQueryHistory) {
			q.Should = append(q.Should, search.TermQuery{Field: "indicators", Term: item})
		}
		for typ, hist := range byType {
			for _, item := range tail(hist, e.cfg.MaxQueryHistory) {
				q.Should = append(q.Should, search.TermQuery{
					Field: crossField(typ),
					Term:  item,
					Boost: e.cfg.SecondaryBoost,
				})
			}
		}
		// Only primary interactions blacklist an item: having *viewed*
		// something does not make recommending it wrong, having
		// accessed/bought it does.
		for _, item := range tail(primary, e.cfg.MaxBlacklist) {
			q.MustNot = append(q.MustNot, search.TermQuery{Field: "id", Term: item})
		}
		for _, hit := range idx.Search(q) {
			recs = append(recs, hit.ID)
		}
	}

	if len(recs) < n {
		recs = fillWithPopular(recs, primary, model.Primary, n)
	}
	return recs
}

// tail returns the last k elements of s.
func tail(s []string, k int) []string {
	if len(s) > k {
		return s[len(s)-k:]
	}
	return s
}

// fillWithPopular completes a short result list with popular items the
// user has not seen and that are not already recommended.
func fillWithPopular(recs, history []string, model *cco.Model, n int) []string {
	taken := make(map[string]bool, len(recs)+len(history))
	for _, r := range recs {
		taken[r] = true
	}
	for _, h := range history {
		taken[h] = true
	}
	for _, p := range model.PopularItems(n + len(taken)) {
		if len(recs) >= n {
			break
		}
		if !taken[p] {
			recs = append(recs, p)
			taken[p] = true
		}
	}
	return recs
}

// userHistory returns the user's distinct primary-indicator items and a
// per-secondary-type history, each in insertion order.
func (e *Engine) userHistory(user string) (primary []string, byType map[string][]string) {
	docs := e.events.FindBy("user", user)
	seen := make(map[[2]string]bool, len(docs))
	for _, d := range docs {
		item := d.Fields["item"]
		typ := d.Fields["type"]
		if item == "" || seen[[2]string{typ, item}] {
			continue
		}
		seen[[2]string{typ, item}] = true
		if typ == "" {
			primary = append(primary, item)
			continue
		}
		if byType == nil {
			byType = make(map[string][]string)
		}
		byType[typ] = append(byType[typ], item)
	}
	return primary, byType
}

// ForEachEvent visits every stored feedback event. It exists for
// operational observability and for the evaluation's verification that the
// database contains only pseudonymous identifiers (§6.1, cases 1c/2c model
// an adversary reading this very data).
func (e *Engine) ForEachEvent(fn func(store.Document)) {
	e.events.Scan(func(d store.Document) bool {
		fn(d)
		return true
	})
}

// RewriteEvents atomically replaces every stored event with the rewritten
// field set returned by rw, then leaves the model untouched (callers
// retrain afterwards). It exists for operator-driven migrations such as
// the key-rotation breach response (§2.3 footnote 1: "downloading the LRS
// state for local re-encryption before re-uploading it"). If rw fails for
// any document, nothing is changed.
func (e *Engine) RewriteEvents(rw func(fields map[string]string) (map[string]string, error)) error {
	e.trainMu.Lock()
	defer e.trainMu.Unlock()

	var rewritten []map[string]string
	var rwErr error
	e.events.Scan(func(d store.Document) bool {
		out, err := rw(d.Fields)
		if err != nil {
			rwErr = fmt.Errorf("rewrite event %s: %w", d.ID, err)
			return false
		}
		rewritten = append(rewritten, out)
		return true
	})
	if rwErr != nil {
		return rwErr
	}
	e.events.Clear()
	for _, fields := range rewritten {
		e.events.Insert(fields)
	}
	return nil
}

// Stats reports request counters: posts, queries, and completed training
// runs.
func (e *Engine) Stats() (posts, queries, trains uint64) {
	return e.posts.Load(), e.queries.Load(), e.trains.Load()
}

// SaveSnapshot persists the engine's durable state (the event log; the
// model is derived and rebuilt by TrainNow).
func (e *Engine) SaveSnapshot(w io.Writer) error {
	e.trainMu.Lock()
	defer e.trainMu.Unlock()
	return e.db.WriteSnapshot(w)
}

// ModelInfo summarizes the served model for operational visibility.
func (e *Engine) ModelInfo() string {
	m := e.model.Load()
	return fmt.Sprintf("users=%d items=%d indicators=%d cross-types=%d",
		m.Primary.Users, len(m.Primary.Popularity), len(m.Primary.Indicators), len(m.Cross))
}
