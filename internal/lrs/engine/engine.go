// Package engine assembles the legacy recommendation system (LRS): a
// Universal-Recommender-style engine equivalent to the Harness deployment
// the PProx paper integrates with (§7). Feedback events are persisted in
// the sharded document store (the MongoDB substitute) as "inputs pending
// processing"; a batch training job (the Spark substitute) builds the CCO
// model; the model is served from the inverted index (the Elasticsearch
// substitute); and a REST front end exposes the post/get API that PProx
// proxies.
//
// The event log is split over a consistent-hash ring keyed by the *user
// pseudonym* — the engine shards blind ciphertexts, never identities —
// and each shard can be WAL-backed for durability. In incremental mode
// every accepted primary event is folded into the CCO counts online
// (cco.Incremental), demoting the batch job to a compaction fallback.
//
// The engine is agnostic to whether identifiers are cleartext or PProx
// pseudonyms — exactly the property that makes PProx transparent to an
// unmodified LRS.
package engine

import (
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"pprox/internal/lrs/cco"
	"pprox/internal/lrs/search"
	"pprox/internal/lrs/store"
	"pprox/internal/message"
	"pprox/internal/obslog"
)

// Config parameterizes the engine.
type Config struct {
	// DefaultN is the recommendation list size when a query does not
	// specify one; capped at message.MaxRecommendations.
	DefaultN int
	// MaxQueryHistory bounds how many recent user interactions form the
	// retrieval query.
	MaxQueryHistory int
	// MaxBlacklist bounds how many of the user's own items are excluded
	// from results (UR blacklists seen items by default).
	MaxBlacklist int
	// SecondaryBoost weights cross-indicator query clauses relative to
	// primary-indicator clauses (UR default: secondary events inform
	// but do not dominate).
	SecondaryBoost float64
	// Trainer bounds the CCO batch job and the incremental model alike.
	Trainer cco.Config
	// Shards splits the event log over a consistent-hash ring keyed by
	// the user pseudonym; values below 1 mean a single shard.
	Shards int
	// WALDir, when set, backs every shard with an append-only WAL plus
	// snapshot under this directory: an accepted post survives a process
	// crash (see WALSync for power-loss durability). Empty keeps the log
	// in memory, as before.
	WALDir string
	// WALSync fsyncs every WAL append before the post is acknowledged,
	// extending durability to OS crashes and power loss at the cost of a
	// disk flush per event. Ignored without WALDir.
	WALSync bool
	// Incremental folds each accepted primary event into the CCO counts
	// online, so retrieval stays fresh between batch trains and TrainNow
	// becomes the compaction fallback.
	Incremental bool
}

// DefaultConfig mirrors a stock Universal Recommender setup: a single
// in-memory shard, batch training only.
func DefaultConfig() Config {
	return Config{
		DefaultN:        message.MaxRecommendations,
		MaxQueryHistory: 20,
		MaxBlacklist:    100,
		SecondaryBoost:  0.5,
		Trainer:         cco.DefaultConfig(),
	}
}

// Engine is the LRS: event ingestion, training (batch or incremental),
// and query serving.
type Engine struct {
	cfg Config
	log *store.ShardedLog

	index atomic.Pointer[search.Index]
	model atomic.Pointer[cco.MultiModel]
	inc   atomic.Pointer[cco.Incremental] // nil unless cfg.Incremental

	trainMu sync.Mutex // serializes batch training jobs
	applyMu sync.Mutex // orders log appends with incremental applies

	posts   atomic.Uint64
	queries atomic.Uint64
	trains  atomic.Uint64
	dups    atomic.Uint64

	applied    atomic.Uint64 // events folded into the incremental model
	applyNanos atomic.Int64  // cumulative time spent in incremental applies
	trainNanos atomic.Int64  // duration of the last batch train
	walErrs    atomic.Uint64 // posts rejected because the WAL append failed

	repseudo         atomic.Pointer[RepseudoJob]
	repseudoRuns     atomic.Uint64
	repseudoFailures atomic.Uint64
	repseudoMigrated atomic.Uint64

	idem idemRegistry

	logger atomic.Pointer[slog.Logger]
}

// SetLogger installs the engine's structured logger. Ingest records wrap
// the pseudonymized identifiers in obslog typed secrets, so even the
// already-opaque det_enc pseudonyms render as salted hashes — log lines
// can never be joined against the LRS database or a network capture.
// Nil disables logging.
func (e *Engine) SetLogger(l *slog.Logger) { e.logger.Store(l) }

func (e *Engine) slogger() *slog.Logger { return e.logger.Load() }

// idemRegistry remembers recently seen idempotency keys so a retried
// insertion (the proxy resent an event whose reply was lost) is dropped
// instead of double-counted. It is a fixed-size FIFO window, not a durable
// log: retries arrive within seconds, the window holds the last
// idemWindow keys, and an unbounded map would be a memory leak with the
// same name.
type idemRegistry struct {
	mu   sync.Mutex
	seen map[string]struct{}
	ring []string
	next int
}

// idemWindow is how many recent keys the registry remembers.
const idemWindow = 1 << 16

// claim records a key, reporting false when it was already seen. On
// success it returns the ring slot holding the key, so a caller whose
// insert then fails can release exactly the claim it made.
func (ir *idemRegistry) claim(key string) (slot int, ok bool) {
	ir.mu.Lock()
	defer ir.mu.Unlock()
	if ir.seen == nil {
		ir.seen = make(map[string]struct{}, idemWindow)
		ir.ring = make([]string, idemWindow)
	}
	if _, dup := ir.seen[key]; dup {
		return 0, false
	}
	slot = ir.next
	if old := ir.ring[slot]; old != "" {
		delete(ir.seen, old)
	}
	ir.ring[slot] = key
	ir.next = (ir.next + 1) % len(ir.ring)
	ir.seen[key] = struct{}{}
	return slot, true
}

// release undoes a claim whose event was never stored (the WAL append
// failed), so the client's retry with the same key is accepted instead
// of dropped as a duplicate of an event that does not exist. The
// (key, slot) pair identifies the exact claim: if the slot was recycled
// or the key re-claimed in the meantime, release is a no-op.
func (ir *idemRegistry) release(key string, slot int) {
	ir.mu.Lock()
	defer ir.mu.Unlock()
	if slot < 0 || slot >= len(ir.ring) || ir.ring[slot] != key {
		return
	}
	ir.ring[slot] = ""
	delete(ir.seen, key)
}

// Open creates an engine. With cfg.WALDir set the shards are opened from
// disk (snapshot load + WAL replay) and, when events were recovered, the
// model is rebuilt immediately so the engine serves from what it durably
// accepted before the crash.
func Open(cfg Config) (*Engine, error) {
	if cfg.DefaultN <= 0 || cfg.DefaultN > message.MaxRecommendations {
		cfg.DefaultN = message.MaxRecommendations
	}
	if cfg.MaxQueryHistory <= 0 {
		cfg.MaxQueryHistory = DefaultConfig().MaxQueryHistory
	}
	if cfg.MaxBlacklist < 0 {
		cfg.MaxBlacklist = 0
	}
	if cfg.SecondaryBoost <= 0 {
		cfg.SecondaryBoost = DefaultConfig().SecondaryBoost
	}
	lg, err := store.OpenShardedLog(store.ShardedConfig{
		Shards:      cfg.Shards,
		Dir:         cfg.WALDir,
		Sync:        cfg.WALSync,
		IndexFields: []string{"user"},
	})
	if err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, log: lg}
	e.index.Store(search.NewIndex())
	e.model.Store(&cco.MultiModel{
		Primary: &cco.Model{
			Indicators: map[string][]cco.Correlation{},
			Popularity: map[string]int{},
		},
		Cross: map[string]map[string][]cco.Correlation{},
	})
	if cfg.Incremental {
		e.inc.Store(cco.NewIncremental(cfg.Trainer))
	}
	if lg.Count() > 0 {
		if err := e.TrainNow(); err != nil {
			lg.Close()
			return nil, err
		}
	}
	return e, nil
}

// New creates an engine with an empty model. It panics if the config
// cannot be opened — only possible with a WALDir, where callers should
// use Open and handle the error.
func New(cfg Config) *Engine {
	e, err := Open(cfg)
	if err != nil {
		panic(fmt.Sprintf("engine: %v", err))
	}
	return e
}

// NewFromSnapshot restores an engine from a snapshot written by
// SaveSnapshot (either the flat v1 layout or the sharded v2 one; events
// are re-routed through the ring, so the shard count may differ from the
// writer's) — the restart-with-persisted-inputs path a MongoDB-backed
// Harness deployment has. The model is not persisted; run TrainNow after
// loading, exactly as Harness rebuilds its model from stored inputs.
func NewFromSnapshot(cfg Config, r io.Reader) (*Engine, error) {
	e, err := Open(cfg)
	if err != nil {
		return nil, err
	}
	if err := e.log.Restore(r); err != nil {
		e.log.Close()
		return nil, err
	}
	return e, nil
}

// Close releases the engine's storage (open WAL files) without
// compacting; use Compact first for a clean shutdown.
func (e *Engine) Close() error { return e.log.Close() }

// NumShards returns the event-log shard count.
func (e *Engine) NumShards() int { return e.log.NumShards() }

// Durable reports whether the event log is WAL-backed.
func (e *Engine) Durable() bool { return e.log.Durable() }

// Incremental reports whether per-event model maintenance is on.
func (e *Engine) Incremental() bool { return e.inc.Load() != nil }

// InsertEvent records primary-indicator feedback: user accessed item,
// with an optional payload (e.g. a rating) that collaborative filtering
// on access indicators stores but does not interpret.
func (e *Engine) InsertEvent(user, item, payload string) {
	e.InsertTypedEvent(user, item, payload, "")
}

// InsertTypedEvent records feedback with an explicit indicator type for
// Correlated Cross-Occurrence; the empty type is the primary indicator.
func (e *Engine) InsertTypedEvent(user, item, payload, eventType string) {
	e.InsertTypedEventIdem(user, item, payload, eventType, "")
}

// InsertTypedEventIdem records feedback carrying an idempotency key and
// reports (stored, err). A repeated key within the dedup window returns
// (false, nil) and stores nothing — the retried delivery of an event the
// store already has, which callers treat as success. The empty key
// always stores (legacy clients and proxies without the feature). On a
// durable log a failed WAL append returns (false, err): an event the
// engine cannot make durable is not accepted, the idempotency key is
// released so a retry is not mistaken for a duplicate, and callers must
// surface the failure as retryable.
func (e *Engine) InsertTypedEventIdem(user, item, payload, eventType, idem string) (bool, error) {
	e.posts.Add(1)
	idemSlot := -1
	if idem != "" {
		slot, ok := e.idem.claim(idem)
		if !ok {
			e.dups.Add(1)
			if l := e.slogger(); l != nil {
				l.Debug("duplicate event dropped", "idem", idem)
			}
			return false, nil
		}
		idemSlot = slot
	}
	fields := map[string]string{
		"user":    user,
		"item":    item,
		"payload": payload,
		"type":    eventType,
	}

	// applyMu makes {append to log, fold into incremental model} one
	// ordered step: the store's per-user event order is exactly the order
	// the incremental counts saw, which is what keeps them convergent
	// with a batch retrain over the log.
	e.applyMu.Lock()
	var insErr error
	if job := e.repseudo.Load(); job != nil {
		insErr = job.insertOrJournal(fields)
	} else {
		_, insErr = e.log.Insert(fields)
	}
	if insErr != nil {
		e.applyMu.Unlock()
		if idem != "" {
			e.idem.release(idem, idemSlot)
		}
		e.walErrs.Add(1)
		if l := e.slogger(); l != nil {
			l.Error("event rejected: append failed", "err", insErr)
		}
		return false, insErr
	}
	e.applyIncrementalLocked(user, item, eventType)
	e.applyMu.Unlock()

	if l := e.slogger(); l != nil {
		l.Debug("event ingested",
			"user", obslog.Pseudonym(user), "item", obslog.Pseudonym(item),
			"type", eventType)
	}
	return true, nil
}

// applyIncrementalLocked folds one event into the incremental model and
// patches the changed indicator rows into the live index. Secondary-typed
// events only reach cross-occurrence at the next batch train (the online
// model maintains the primary indicator, which drives retrieval).
// Callers hold e.applyMu.
func (e *Engine) applyIncrementalLocked(user, item, typ string) {
	inc := e.inc.Load()
	if inc == nil || typ != "" {
		return
	}
	start := time.Now()
	updates := inc.Apply(cco.Event{User: user, Item: item})
	if len(updates) > 0 {
		idx := e.index.Load()
		for _, up := range updates {
			applyRowUpdate(idx, up)
		}
	}
	e.applied.Add(1)
	e.applyNanos.Add(time.Since(start).Nanoseconds())
}

// applyRowUpdate patches one item's primary-indicator field in the live
// index, preserving whatever cross-indicator fields the last batch train
// put on the document.
func applyRowUpdate(idx *search.Index, up cco.RowUpdate) {
	doc, ok := idx.Get(up.Item)
	if !ok {
		if len(up.Indicators) == 0 {
			return
		}
		doc = search.Doc{ID: up.Item, Fields: map[string][]string{"id": {up.Item}}}
	}
	if len(up.Indicators) == 0 {
		delete(doc.Fields, "indicators")
		if len(doc.Fields) <= 1 { // nothing left but the "id" self-field
			idx.Delete(up.Item)
			return
		}
		idx.Put(doc)
		return
	}
	terms := make([]string, len(up.Indicators))
	for i, c := range up.Indicators {
		terms[i] = c.Item
	}
	doc.Fields["indicators"] = terms
	idx.Put(doc)
}

// DupEvents reports how many insertions were dropped as idempotent
// duplicates.
func (e *Engine) DupEvents() uint64 { return e.dups.Load() }

// WALErrors reports how many posts were rejected by WAL append failures.
func (e *Engine) WALErrors() uint64 { return e.walErrs.Load() }

// EventsApplied reports how many events the incremental model has folded
// in.
func (e *Engine) EventsApplied() uint64 { return e.applied.Load() }

// ApplySeconds reports the cumulative time spent in incremental applies.
func (e *Engine) ApplySeconds() float64 {
	return time.Duration(e.applyNanos.Load()).Seconds()
}

// TrainSeconds reports the duration of the last batch training run.
func (e *Engine) TrainSeconds() float64 {
	return time.Duration(e.trainNanos.Load()).Seconds()
}

// EventCount returns the number of stored feedback events.
func (e *Engine) EventCount() int { return e.log.Count() }

// TrainNow runs the batch training job: it snapshots the event log in
// deterministic order, builds a fresh CCO model, and atomically swaps in
// a new index — the same periodic-rebuild lifecycle as Harness running
// Apache Spark (§7). In incremental mode it doubles as the compaction
// fallback: the online counts are reseeded from the same ordered stream,
// so batch and incremental state coincide exactly at every train.
// Queries keep being served from the previous model during training.
func (e *Engine) TrainNow() error {
	e.trainMu.Lock()
	defer e.trainMu.Unlock()
	// Block appends for the scan+reseed so the reseeded counts cover
	// precisely the scanned events — posts resume against the new state.
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	start := time.Now()

	events := make([]cco.TypedEvent, 0, e.log.Count())
	e.log.ScanOrdered(func(d store.Document) bool {
		events = append(events, cco.TypedEvent{
			User: d.Fields["user"],
			Item: d.Fields["item"],
			Type: d.Fields["type"],
		})
		return true
	})

	model := cco.TrainMulti(events, e.cfg.Trainer)
	idx := buildIndex(model)

	if e.inc.Load() != nil {
		inc := cco.NewIncremental(e.cfg.Trainer)
		for _, ev := range events {
			if ev.Type == "" {
				inc.Apply(cco.Event{User: ev.User, Item: ev.Item})
			}
		}
		e.inc.Store(inc)
	}

	e.model.Store(model)
	e.index.Store(idx)
	e.trains.Add(1)
	e.trainNanos.Store(time.Since(start).Nanoseconds())
	if l := e.slogger(); l != nil {
		l.Info("model trained",
			"events", len(events), "items", idx.Len(),
			"duration_ms", time.Since(start).Milliseconds())
	}
	return nil
}

// buildIndex lays the model out the way the Universal Recommender lays
// out Elasticsearch documents: one document per item carrying its primary
// indicators and one cross-indicator field per secondary type.
func buildIndex(model *cco.MultiModel) *search.Index {
	idx := search.NewIndex()
	docs := make(map[string]search.Doc)
	docFor := func(item string) search.Doc {
		d, ok := docs[item]
		if !ok {
			d = search.Doc{ID: item, Fields: map[string][]string{"id": {item}}}
			docs[item] = d
		}
		return d
	}
	for item, correlations := range model.Primary.Indicators {
		terms := make([]string, len(correlations))
		for i, c := range correlations {
			terms[i] = c.Item
		}
		docFor(item).Fields["indicators"] = terms
	}
	for typ, byItem := range model.Cross {
		field := crossField(typ)
		for item, correlations := range byItem {
			terms := make([]string, len(correlations))
			for i, c := range correlations {
				terms[i] = c.Item
			}
			docFor(item).Fields[field] = terms
		}
	}
	for _, d := range docs {
		idx.Put(d)
	}
	return idx
}

// Refresh re-scores every row of the incremental model and swaps in a
// fully rebuilt index and primary model, without re-reading the event
// log (cross-indicators keep their last batch state). It closes the gap
// online applies leave open: rows whose pair counts never changed carry
// scores from an older population. A no-op in batch mode.
func (e *Engine) Refresh() {
	inc := e.inc.Load()
	if inc == nil {
		return
	}
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	model := &cco.MultiModel{Primary: inc.Model(), Cross: e.model.Load().Cross}
	e.model.Store(model)
	e.index.Store(buildIndex(model))
}

// Compact folds the log into fresh batch state (TrainNow, which also
// reseeds the incremental counts) and then makes the current shard
// contents the durable baseline: snapshot written, WALs truncated.
func (e *Engine) Compact() error {
	if err := e.TrainNow(); err != nil {
		return err
	}
	return e.log.Compact()
}

// crossField names the index field holding cross-indicators of a type.
func crossField(typ string) string { return "indicators_" + typ }

// Recommend returns up to n item identifiers for the user, best first.
// The query model is the Universal Recommender's: the user's recent
// history items are OR-ed against every item's learned indicators; the
// user's own items are blacklisted; users without usable history receive
// the most popular items (cold start).
func (e *Engine) Recommend(user string, n int) []string {
	e.queries.Add(1)
	if n <= 0 || n > e.cfg.DefaultN {
		n = e.cfg.DefaultN
	}

	primary, byType := e.userHistory(user)
	model := e.model.Load()
	idx := e.index.Load()

	var recs []string
	if len(primary) > 0 || len(byType) > 0 {
		q := search.Query{Size: n}
		for _, item := range tail(primary, e.cfg.MaxQueryHistory) {
			q.Should = append(q.Should, search.TermQuery{Field: "indicators", Term: item})
		}
		for typ, hist := range byType {
			for _, item := range tail(hist, e.cfg.MaxQueryHistory) {
				q.Should = append(q.Should, search.TermQuery{
					Field: crossField(typ),
					Term:  item,
					Boost: e.cfg.SecondaryBoost,
				})
			}
		}
		// Only primary interactions blacklist an item: having *viewed*
		// something does not make recommending it wrong, having
		// accessed/bought it does.
		for _, item := range tail(primary, e.cfg.MaxBlacklist) {
			q.MustNot = append(q.MustNot, search.TermQuery{Field: "id", Term: item})
		}
		for _, hit := range idx.Search(q) {
			recs = append(recs, hit.ID)
		}
	}

	if len(recs) < n {
		// Cold-start popularity: live counts in incremental mode, the
		// last batch model otherwise.
		popFn := model.Primary.PopularItems
		if inc := e.inc.Load(); inc != nil {
			popFn = inc.PopularItems
		}
		recs = fillWithPopular(recs, primary, popFn, n)
	}
	return recs
}

// tail returns the last k elements of s.
func tail(s []string, k int) []string {
	if len(s) > k {
		return s[len(s)-k:]
	}
	return s
}

// fillWithPopular completes a short result list with popular items the
// user has not seen and that are not already recommended.
func fillWithPopular(recs, history []string, popFn func(int) []string, n int) []string {
	taken := make(map[string]bool, len(recs)+len(history))
	for _, r := range recs {
		taken[r] = true
	}
	for _, h := range history {
		taken[h] = true
	}
	for _, p := range popFn(n + len(taken)) {
		if len(recs) >= n {
			break
		}
		if !taken[p] {
			recs = append(recs, p)
			taken[p] = true
		}
	}
	return recs
}

// userHistory returns the user's distinct primary-indicator items and a
// per-secondary-type history, each in insertion order. The lookup lands
// on the single shard owning the user pseudonym.
func (e *Engine) userHistory(user string) (primary []string, byType map[string][]string) {
	docs := e.log.FindBy("user", user)
	seen := make(map[[2]string]bool, len(docs))
	for _, d := range docs {
		item := d.Fields["item"]
		typ := d.Fields["type"]
		if item == "" || seen[[2]string{typ, item}] {
			continue
		}
		seen[[2]string{typ, item}] = true
		if typ == "" {
			primary = append(primary, item)
			continue
		}
		if byType == nil {
			byType = make(map[string][]string)
		}
		byType[typ] = append(byType[typ], item)
	}
	return primary, byType
}

// ForEachEvent visits every stored feedback event in deterministic shard
// order. It exists for operational observability and for the evaluation's
// verification that the database contains only pseudonymous identifiers
// (§6.1, cases 1c/2c model an adversary reading this very data).
func (e *Engine) ForEachEvent(fn func(store.Document)) {
	e.log.ScanOrdered(func(d store.Document) bool {
		fn(d)
		return true
	})
}

// Stats reports request counters: posts, queries, and completed training
// runs.
func (e *Engine) Stats() (posts, queries, trains uint64) {
	return e.posts.Load(), e.queries.Load(), e.trains.Load()
}

// SaveSnapshot persists the engine's durable state (the event log; the
// model is derived and rebuilt by TrainNow). The snapshot is the sharded
// v2 layout; NewFromSnapshot also accepts pre-sharding v1 files.
func (e *Engine) SaveSnapshot(w io.Writer) error {
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	return e.log.WriteSnapshot(w)
}

// SaveSnapshotFile persists the snapshot to path atomically (temp +
// fsync + rename): a crash mid-save leaves the previous snapshot intact.
func (e *Engine) SaveSnapshotFile(path string) error {
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	return e.log.WriteSnapshotFile(path)
}

// ModelInfo summarizes the served model for operational visibility.
func (e *Engine) ModelInfo() string {
	m := e.model.Load()
	info := fmt.Sprintf("users=%d items=%d indicators=%d cross-types=%d",
		m.Primary.Users, len(m.Primary.Popularity), len(m.Primary.Indicators), len(m.Cross))
	if inc := e.inc.Load(); inc != nil {
		users, items, rows := inc.Counts()
		info += fmt.Sprintf(" incremental[users=%d items=%d rows=%d applied=%d]",
			users, items, rows, e.applied.Load())
	}
	return info
}
