package engine

import (
	"fmt"
	"net/http"

	"pprox/internal/message"
	"pprox/internal/metrics"
)

// RegisterMetrics exposes the engine's request counters — true monotonic
// counters with the Prometheus `_total` convention — plus the event-store
// gauge and a request service-time histogram family. It returns a wrapper
// that instruments an LRS REST handler with the histogram; node names
// this front end's series (empty defaults to "lrs").
func (e *Engine) RegisterMetrics(r *metrics.Registry, node string) func(http.Handler) http.Handler {
	if node == "" {
		node = "lrs"
	}
	r.CounterFunc("pprox_lrs_posts_total", "Feedback insertions accepted.", func() float64 {
		posts, _, _ := e.Stats()
		return float64(posts)
	})
	r.CounterFunc("pprox_lrs_queries_total", "Recommendation queries served.", func() float64 {
		_, queries, _ := e.Stats()
		return float64(queries)
	})
	r.CounterFunc("pprox_lrs_trains_total", "Completed training runs.", func() float64 {
		_, _, trains := e.Stats()
		return float64(trains)
	})
	r.CounterFunc("pprox_lrs_dup_events_total",
		"Insertions dropped as idempotent duplicates of a retried event.", func() float64 {
			return float64(e.DupEvents())
		})
	r.Gauge("pprox_lrs_events", "Events in the store.", func() float64 {
		return float64(e.EventCount())
	})
	r.Gauge("pprox_lrs_shards", "Event-log shards.", func() float64 {
		return float64(e.NumShards())
	})
	r.Gauge("pprox_lrs_train_seconds", "Duration of the last batch training run.", func() float64 {
		return e.TrainSeconds()
	})
	r.CounterFunc("pprox_lrs_events_applied_total",
		"Events folded into the incremental model.", func() float64 {
			return float64(e.EventsApplied())
		})
	r.CounterFunc("pprox_lrs_apply_seconds_total",
		"Cumulative time spent applying events to the incremental model.", func() float64 {
			return e.ApplySeconds()
		})
	r.CounterFunc("pprox_lrs_wal_errors_total",
		"Posts rejected because the WAL append failed.", func() float64 {
			return float64(e.WALErrors())
		})
	r.CounterFunc("pprox_lrs_repseudo_runs_total",
		"Re-pseudonymization jobs started.", func() float64 {
			runs, _, _ := e.RepseudoStats()
			return float64(runs)
		})
	r.CounterFunc("pprox_lrs_repseudo_failures_total",
		"Re-pseudonymization jobs that failed closed.", func() float64 {
			_, failures, _ := e.RepseudoStats()
			return float64(failures)
		})
	r.CounterFunc("pprox_lrs_repseudo_migrated_total",
		"Events rewritten by re-pseudonymization jobs.", func() float64 {
			_, _, migrated := e.RepseudoStats()
			return float64(migrated)
		})
	r.Gauge("pprox_lrs_repseudo_running",
		"1 while a re-pseudonymization job is active.", func() float64 {
			if e.RepseudoActive() {
				return 1
			}
			return 0
		})
	r.Gauge("pprox_lrs_repseudo_shards_done",
		"Shards staged by the active re-pseudonymization job.", func() float64 {
			done, _ := e.RepseudoProgress()
			return float64(done)
		})
	r.Gauge("pprox_lrs_repseudo_shards_total",
		"Shards the active re-pseudonymization job covers.", func() float64 {
			_, total := e.RepseudoProgress()
			return float64(total)
		})

	hv := r.HistogramVec("pprox_lrs_request_seconds",
		"LRS request service time.", nil, "node", "path")
	// Bound the path label to the fixed REST surface.
	known := map[string]bool{
		message.EventsPath: true, message.QueriesPath: true,
		message.HealthPath: true, "/train": true,
	}
	label := func(req *http.Request) []string {
		p := "other"
		if known[req.URL.Path] {
			p = req.URL.Path
		}
		return []string{node, p}
	}
	return func(h http.Handler) http.Handler {
		return metrics.InstrumentHandler(hv, label, h)
	}
}

// Health reports the engine's state for the /healthz endpoint: event
// store size and the served model summary. An untrained engine is alive
// (it answers with popularity fallbacks, normal at start-up), so the
// engine is always ready once it serves.
func (e *Engine) Health() metrics.Health {
	return metrics.Health{
		OK: true,
		Checks: map[string]string{
			"events": fmt.Sprintf("%d", e.EventCount()),
			"model":  e.ModelInfo(),
		},
	}
}
