package engine

import (
	"fmt"
	"testing"

	"pprox/internal/lrs/store"
)

// seedCrossIndicators builds a world where VIEW behaviour predicts
// primary access: users who view "trailer-x" go on to access "movie-x".
func seedCrossIndicators(e *Engine) {
	for i := 0; i < 15; i++ {
		u := fmt.Sprintf("xfan-%d", i)
		e.InsertTypedEvent(u, "trailer-x", "", "view")
		e.InsertTypedEvent(u, "movie-x", "", "")
	}
	for i := 0; i < 15; i++ {
		u := fmt.Sprintf("yfan-%d", i)
		e.InsertTypedEvent(u, "trailer-y", "", "view")
		e.InsertTypedEvent(u, "movie-y", "", "")
	}
}

func TestRecommendFromSecondaryIndicatorsOnly(t *testing.T) {
	e := New(DefaultConfig())
	seedCrossIndicators(e)
	// probe has only VIEWED trailer-x — no primary history at all.
	e.InsertTypedEvent("probe", "trailer-x", "", "view")
	if err := e.TrainNow(); err != nil {
		t.Fatal(err)
	}

	recs := e.Recommend("probe", 2)
	if len(recs) == 0 {
		t.Fatal("no recommendations from secondary history")
	}
	if recs[0] != "movie-x" {
		t.Errorf("recs = %v, want movie-x first (cross-occurrence view→access)", recs)
	}
}

func TestSecondaryHistoryDoesNotBlacklist(t *testing.T) {
	e := New(DefaultConfig())
	seedCrossIndicators(e)
	// Viewing a trailer for an item must not prevent recommending the
	// item itself; only primary interactions blacklist.
	e.InsertTypedEvent("probe", "trailer-x", "", "view")
	e.InsertTypedEvent("probe", "movie-y", "", "") // primary: seen
	if err := e.TrainNow(); err != nil {
		t.Fatal(err)
	}
	recs := e.Recommend("probe", 5)
	sawX, sawY := false, false
	for _, r := range recs {
		if r == "movie-x" {
			sawX = true
		}
		if r == "movie-y" {
			sawY = true
		}
	}
	if !sawX {
		t.Errorf("recs %v missing movie-x despite the view signal", recs)
	}
	if sawY {
		t.Errorf("recs %v include the primary-seen movie-y", recs)
	}
}

func TestPrimaryOutweighsSecondary(t *testing.T) {
	cfg := DefaultConfig()
	e := New(cfg)
	// Two disjoint signals of equal statistical strength: a primary
	// co-occurrence toward "strong" and a view cross-occurrence toward
	// "weak". With SecondaryBoost < 1 the primary one must rank first.
	for i := 0; i < 15; i++ {
		u := fmt.Sprintf("p-%d", i)
		e.InsertTypedEvent(u, "anchor", "", "")
		e.InsertTypedEvent(u, "strong", "", "")
	}
	for i := 0; i < 15; i++ {
		u := fmt.Sprintf("v-%d", i)
		e.InsertTypedEvent(u, "anchor-view", "", "view")
		e.InsertTypedEvent(u, "weak", "", "")
	}
	for i := 0; i < 10; i++ {
		e.InsertTypedEvent(fmt.Sprintf("bg-%d", i), "noise", "", "")
	}
	e.InsertTypedEvent("probe", "anchor", "", "")
	e.InsertTypedEvent("probe", "anchor-view", "", "view")
	if err := e.TrainNow(); err != nil {
		t.Fatal(err)
	}
	recs := e.Recommend("probe", 2)
	if len(recs) < 2 {
		t.Fatalf("recs = %v", recs)
	}
	if recs[0] != "strong" {
		t.Errorf("recs = %v, want the primary-indicator item first", recs)
	}
}

func TestTypedEventsStoredAndVisible(t *testing.T) {
	e := New(DefaultConfig())
	e.InsertTypedEvent("u", "i", "p", "like")
	found := false
	e.ForEachEvent(func(d store.Document) {
		if d.Fields["type"] == "like" && d.Fields["item"] == "i" {
			found = true
		}
	})
	if !found {
		t.Error("typed event not persisted with its indicator type")
	}
}

// TestRandomizedPseudonymsDestroyProfiles is the DESIGN.md §4 ablation
// explaining WHY PProx uses deterministic encryption for pseudonyms
// (§4.1): if each post carried a fresh randomized pseudonym, the LRS
// could never link two interactions of the same user — profiles collapse
// to singletons and collaborative filtering learns nothing.
func TestRandomizedPseudonymsDestroyProfiles(t *testing.T) {
	deterministic := New(DefaultConfig())
	randomized := New(DefaultConfig())

	// Same underlying behaviour, two pseudonymization disciplines.
	serial := 0
	for i := 0; i < 15; i++ {
		user := fmt.Sprintf("u%d", i)
		for _, item := range []string{"a", "b"} {
			deterministic.InsertEvent("stable-"+user, item, "")
			serial++
			randomized.InsertEvent(fmt.Sprintf("random-%s-%d", user, serial), item, "")
		}
	}
	for i := 0; i < 6; i++ {
		deterministic.InsertEvent(fmt.Sprintf("stable-s%d", i), "c", "")
		serial++
		randomized.InsertEvent(fmt.Sprintf("random-s%d-%d", i, serial), "c", "")
	}
	deterministic.InsertEvent("stable-probe", "a", "")
	randomized.InsertEvent(fmt.Sprintf("random-probe-%d", serial+1), "a", "")

	if err := deterministic.TrainNow(); err != nil {
		t.Fatal(err)
	}
	if err := randomized.TrainNow(); err != nil {
		t.Fatal(err)
	}

	// Deterministic pseudonyms: the model learned a↔b.
	if recs := deterministic.Recommend("stable-probe", 1); len(recs) == 0 || recs[0] != "b" {
		t.Errorf("deterministic pseudonyms: recs = %v, want [b]", recs)
	}
	// Randomized pseudonyms: every profile is a singleton, so no
	// co-occurrence can ever be observed.
	m := randomized.model.Load()
	if len(m.Primary.Indicators) != 0 {
		t.Errorf("randomized pseudonyms still produced %d correlations — ablation broken", len(m.Primary.Indicators))
	}
}
