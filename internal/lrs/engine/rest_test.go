package engine

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pprox/internal/message"
)

func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestRESTEventInsertAndQuery(t *testing.T) {
	e := New(DefaultConfig())
	h := NewHandler(e)

	for i := 0; i < 12; i++ {
		u := fmt.Sprintf("u%d", i)
		for _, item := range []string{"a", "b"} {
			rec := do(t, h, http.MethodPost, message.EventsPath,
				fmt.Sprintf(`{"user":%q,"item":%q}`, u, item))
			if rec.Code != http.StatusOK {
				t.Fatalf("post event: status %d: %s", rec.Code, rec.Body)
			}
		}
	}
	for i := 0; i < 4; i++ {
		do(t, h, http.MethodPost, message.EventsPath,
			fmt.Sprintf(`{"user":"solo%d","item":"c"}`, i))
	}
	do(t, h, http.MethodPost, message.EventsPath, `{"user":"probe","item":"a"}`)

	if rec := do(t, h, http.MethodPost, "/train", ""); rec.Code != http.StatusOK {
		t.Fatalf("train: status %d", rec.Code)
	}

	rec := do(t, h, http.MethodPost, message.QueriesPath, `{"user":"probe","n":5}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("query: status %d: %s", rec.Code, rec.Body)
	}
	var resp message.LRSGetResponse
	if err := message.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) == 0 || resp.Items[0] != "b" {
		t.Errorf("items = %v, want b first", resp.Items)
	}
}

func TestRESTValidation(t *testing.T) {
	h := NewHandler(New(DefaultConfig()))
	cases := []struct {
		name, method, path, body string
		wantStatus               int
	}{
		{"missing user on event", http.MethodPost, message.EventsPath, `{"item":"i"}`, http.StatusBadRequest},
		{"missing item on event", http.MethodPost, message.EventsPath, `{"user":"u"}`, http.StatusBadRequest},
		{"bad json on event", http.MethodPost, message.EventsPath, `{`, http.StatusBadRequest},
		{"missing user on query", http.MethodPost, message.QueriesPath, `{}`, http.StatusBadRequest},
		{"bad json on query", http.MethodPost, message.QueriesPath, `]`, http.StatusBadRequest},
		{"unknown path", http.MethodGet, "/nope", "", http.StatusNotFound},
		{"wrong method on events", http.MethodGet, message.EventsPath, "", http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(t, h, tc.method, tc.path, tc.body)
			if rec.Code != tc.wantStatus {
				t.Errorf("status = %d, want %d", rec.Code, tc.wantStatus)
			}
		})
	}
}

func TestRESTHealth(t *testing.T) {
	h := NewHandler(New(DefaultConfig()))
	rec := do(t, h, http.MethodGet, message.HealthPath, "")
	if rec.Code != http.StatusOK {
		t.Errorf("health = %d", rec.Code)
	}
}

func TestRESTQueryWithoutNUsesDefault(t *testing.T) {
	e := New(DefaultConfig())
	h := NewHandler(e)
	do(t, h, http.MethodPost, message.EventsPath, `{"user":"u","item":"i"}`)
	rec := do(t, h, http.MethodPost, message.QueriesPath, `{"user":"u"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp message.LRSGetResponse
	if err := message.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) > message.MaxRecommendations {
		t.Errorf("returned %d items, above maximum", len(resp.Items))
	}
}

func TestMultiHandlerRoutesByTenant(t *testing.T) {
	shop := New(DefaultConfig())
	forum := New(DefaultConfig())
	mh := NewMultiHandler(map[string]*Engine{"shop": shop, "forum": forum}, nil)

	rec := do(t, mh, http.MethodPost, message.EventsPath, `{"user":"u","item":"i","tenant":"shop"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("shop event: %d %s", rec.Code, rec.Body)
	}
	if shop.EventCount() != 1 || forum.EventCount() != 0 {
		t.Errorf("events routed wrong: shop=%d forum=%d", shop.EventCount(), forum.EventCount())
	}

	rec = do(t, mh, http.MethodPost, message.EventsPath, `{"user":"u","item":"i","tenant":"forum"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("forum event: %d", rec.Code)
	}
	if forum.EventCount() != 1 {
		t.Errorf("forum events = %d", forum.EventCount())
	}
}

func TestMultiHandlerUnknownTenant(t *testing.T) {
	mh := NewMultiHandler(map[string]*Engine{"shop": New(DefaultConfig())}, nil)
	rec := do(t, mh, http.MethodPost, message.EventsPath, `{"user":"u","item":"i","tenant":"nope"}`)
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown tenant: %d, want 404", rec.Code)
	}
	// Empty tenant with no default engine is also unknown.
	rec = do(t, mh, http.MethodPost, message.EventsPath, `{"user":"u","item":"i"}`)
	if rec.Code != http.StatusNotFound {
		t.Errorf("no default engine: %d, want 404", rec.Code)
	}
}

func TestMultiHandlerDefaultEngine(t *testing.T) {
	def := New(DefaultConfig())
	mh := NewMultiHandler(nil, def)
	rec := do(t, mh, http.MethodPost, message.EventsPath, `{"user":"u","item":"i"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("default engine: %d", rec.Code)
	}
	if def.EventCount() != 1 {
		t.Errorf("default engine events = %d", def.EventCount())
	}
	// Health works without tenant routing.
	rec = do(t, mh, http.MethodGet, message.HealthPath, "")
	if rec.Code != http.StatusOK {
		t.Errorf("health = %d", rec.Code)
	}
}

func TestMultiHandlerQueryRouting(t *testing.T) {
	shop := New(DefaultConfig())
	mh := NewMultiHandler(map[string]*Engine{"shop": shop}, nil)
	for i := 0; i < 10; i++ {
		u := fmt.Sprintf("u%d", i)
		do(t, mh, http.MethodPost, message.EventsPath, fmt.Sprintf(`{"user":%q,"item":"a","tenant":"shop"}`, u))
		do(t, mh, http.MethodPost, message.EventsPath, fmt.Sprintf(`{"user":%q,"item":"b","tenant":"shop"}`, u))
	}
	for i := 0; i < 4; i++ {
		do(t, mh, http.MethodPost, message.EventsPath, fmt.Sprintf(`{"user":"s%d","item":"c","tenant":"shop"}`, i))
	}
	do(t, mh, http.MethodPost, message.EventsPath, `{"user":"probe","item":"a","tenant":"shop"}`)
	if rec := do(t, mh, http.MethodPost, "/train", `{"tenant":"shop"}`); rec.Code != http.StatusOK {
		t.Fatalf("train through router: %d", rec.Code)
	}
	rec := do(t, mh, http.MethodPost, message.QueriesPath, `{"user":"probe","tenant":"shop","n":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body)
	}
	var resp message.LRSGetResponse
	if err := message.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 1 || resp.Items[0] != "b" {
		t.Errorf("routed query items = %v", resp.Items)
	}
}

// TestRESTEventStorageFailureAnswers503: when the engine cannot make an
// event durable (the WAL append fails), the client must NOT be told
// "ok" — it gets a retryable 503 and the event is counted rejected.
func TestRESTEventStorageFailureAnswers503(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WALDir = t.TempDir()
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandler(e)

	if rec := do(t, h, http.MethodPost, message.EventsPath, `{"user":"u","item":"i"}`); rec.Code != http.StatusOK {
		t.Fatalf("healthy post: status %d: %s", rec.Code, rec.Body)
	}
	// Kill the WAL out from under the engine: appends now fail and the
	// engine rejects the event.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	rec := do(t, h, http.MethodPost, message.EventsPath, `{"user":"u","item":"j"}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("rejected post: status %d, want 503: %s", rec.Code, rec.Body)
	}
	if e.EventCount() != 1 {
		t.Fatalf("events = %d after rejected post, want 1", e.EventCount())
	}
	if e.WALErrors() != 1 {
		t.Fatalf("wal errors = %d, want 1", e.WALErrors())
	}
}

// TestRESTDuplicateIdemAnswersOK: a retried delivery (same idempotency
// key) is dropped but still answers 200 — the event IS stored, by the
// earlier delivery.
func TestRESTDuplicateIdemAnswersOK(t *testing.T) {
	e := New(DefaultConfig())
	h := NewHandler(e)
	for i := 0; i < 2; i++ {
		rec := do(t, h, http.MethodPost, message.EventsPath, `{"user":"u","item":"i","idem":"k1"}`)
		if rec.Code != http.StatusOK {
			t.Fatalf("delivery %d: status %d: %s", i, rec.Code, rec.Body)
		}
	}
	if e.EventCount() != 1 {
		t.Fatalf("events = %d, want 1 (duplicate double-counted)", e.EventCount())
	}
	if e.DupEvents() != 1 {
		t.Fatalf("dups = %d, want 1", e.DupEvents())
	}
}
