package engine

import (
	"bytes"
	"fmt"
	"io"
	"net/http"

	"pprox/internal/message"
)

// maxBodyBytes bounds REST request bodies; PProx messages are small and
// constant-size, so anything large is malformed or hostile.
const maxBodyBytes = 1 << 20

// MultiHandler routes REST traffic to per-application engines by the
// request's tenant field — the way a Harness deployment hosts one engine
// per RaaS client application. Unknown tenants are rejected; the empty
// tenant routes to the default engine when one is set.
type MultiHandler struct {
	engines map[string]*Engine
	// fallback serves the empty tenant (single-tenant clients).
	fallback *Handler
	handlers map[string]*Handler
}

// NewMultiHandler builds the router. The defaultEngine may be nil if every
// client names a tenant.
func NewMultiHandler(engines map[string]*Engine, defaultEngine *Engine) *MultiHandler {
	mh := &MultiHandler{engines: engines, handlers: make(map[string]*Handler, len(engines))}
	for tenant, e := range engines {
		mh.handlers[tenant] = NewHandler(e)
	}
	if defaultEngine != nil {
		mh.fallback = NewHandler(defaultEngine)
	}
	return mh
}

// ServeHTTP routes by the tenant field of the JSON body.
func (mh *MultiHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet && r.URL.Path == message.HealthPath {
		fmt.Fprint(w, "ok")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var probe struct {
		Tenant string `json:"tenant"`
	}
	// Tolerate non-JSON bodies here; the routed handler validates.
	_ = message.Unmarshal(body, &probe)

	h := mh.fallback
	if probe.Tenant != "" {
		h = mh.handlers[probe.Tenant]
	}
	if h == nil {
		http.Error(w, "unknown tenant", http.StatusNotFound)
		return
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	h.ServeHTTP(w, r)
}

// Handler exposes the engine over the LRS REST API (§2.1):
//
//	POST /events  — post(u, i[, p]) feedback insertion
//	POST /queries — get(u) recommendation query
//	POST /train   — trigger the batch training job (operator endpoint)
//	GET  /healthz — liveness
type Handler struct {
	engine *Engine
}

// NewHandler wraps an engine in its REST front end.
func NewHandler(e *Engine) *Handler { return &Handler{engine: e} }

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodPost && r.URL.Path == message.EventsPath:
		h.postEvent(w, r)
	case r.Method == http.MethodPost && r.URL.Path == message.QueriesPath:
		h.postQuery(w, r)
	case r.Method == http.MethodPost && r.URL.Path == "/train":
		h.postTrain(w)
	case r.Method == http.MethodGet && r.URL.Path == message.HealthPath:
		fmt.Fprint(w, "ok")
	default:
		http.NotFound(w, r)
	}
}

func (h *Handler) postEvent(w http.ResponseWriter, r *http.Request) {
	var req message.LRSPost
	if !readJSON(w, r, &req) {
		return
	}
	if req.User == "" || req.Item == "" {
		http.Error(w, "user and item are required", http.StatusBadRequest)
		return
	}
	// A duplicate idempotency key still answers "ok": the event IS
	// stored, just by the earlier delivery this one retried. A storage
	// failure (the WAL append was rejected) must NOT answer "ok" — the
	// event was dropped, so the client gets 503 and retries.
	if _, err := h.engine.InsertTypedEventIdem(req.User, req.Item, req.Payload, req.Event, req.Idem); err != nil {
		http.Error(w, "event not stored: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, message.OK{Status: "ok"})
}

func (h *Handler) postQuery(w http.ResponseWriter, r *http.Request) {
	var req message.LRSGet
	if !readJSON(w, r, &req) {
		return
	}
	if req.User == "" {
		http.Error(w, "user is required", http.StatusBadRequest)
		return
	}
	items := h.engine.Recommend(req.User, req.N)
	writeJSON(w, message.LRSGetResponse{Items: items})
}

func (h *Handler) postTrain(w http.ResponseWriter) {
	if err := h.engine.TrainNow(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, message.OK{Status: "trained"})
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	if err := message.Unmarshal(body, v); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	data, err := message.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}
