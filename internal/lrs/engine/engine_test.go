package engine

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// seedClusters inserts two disjoint user communities: "sci" users share
// sci-fi items, "cook" users share cooking items.
func seedClusters(e *Engine) {
	for i := 0; i < 15; i++ {
		u := fmt.Sprintf("sci-user-%d", i)
		e.InsertEvent(u, "dune", "")
		e.InsertEvent(u, "foundation", "")
		e.InsertEvent(u, "hyperion", "")
	}
	for i := 0; i < 15; i++ {
		u := fmt.Sprintf("cook-user-%d", i)
		e.InsertEvent(u, "salt-fat-acid", "")
		e.InsertEvent(u, "joy-of-cooking", "")
	}
}

func TestRecommendFromCommunity(t *testing.T) {
	e := New(DefaultConfig())
	seedClusters(e)
	// A new sci-fi reader who has only seen dune.
	e.InsertEvent("newbie", "dune", "")
	if err := e.TrainNow(); err != nil {
		t.Fatal(err)
	}

	recs := e.Recommend("newbie", 2)
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	got := map[string]bool{}
	for _, r := range recs {
		got[r] = true
	}
	if !got["foundation"] && !got["hyperion"] {
		t.Errorf("recs = %v, want sci-fi items", recs)
	}
	if got["dune"] {
		t.Errorf("recs %v include an already-seen item", recs)
	}
}

func TestRecommendBlacklistsSeenItems(t *testing.T) {
	e := New(DefaultConfig())
	seedClusters(e)
	// This user has seen everything sci-fi.
	e.InsertEvent("veteran", "dune", "")
	e.InsertEvent("veteran", "foundation", "")
	e.InsertEvent("veteran", "hyperion", "")
	if err := e.TrainNow(); err != nil {
		t.Fatal(err)
	}
	for _, r := range e.Recommend("veteran", 10) {
		if r == "dune" || r == "foundation" || r == "hyperion" {
			t.Errorf("recommended already-seen item %q", r)
		}
	}
}

func TestColdStartFallsBackToPopular(t *testing.T) {
	e := New(DefaultConfig())
	seedClusters(e)
	if err := e.TrainNow(); err != nil {
		t.Fatal(err)
	}
	recs := e.Recommend("total-stranger", 3)
	if len(recs) == 0 {
		t.Fatal("cold-start user received no recommendations")
	}
	// All clusters' items are fair game; results must be real items.
	valid := map[string]bool{
		"dune": true, "foundation": true, "hyperion": true,
		"salt-fat-acid": true, "joy-of-cooking": true,
	}
	for _, r := range recs {
		if !valid[r] {
			t.Errorf("cold-start recommended unknown item %q", r)
		}
	}
}

func TestRecommendBeforeTraining(t *testing.T) {
	e := New(DefaultConfig())
	e.InsertEvent("u", "i", "")
	if recs := e.Recommend("u", 5); len(recs) != 0 {
		t.Errorf("untrained engine recommended %v", recs)
	}
}

func TestRecommendHonorsN(t *testing.T) {
	e := New(DefaultConfig())
	for i := 0; i < 30; i++ {
		u := fmt.Sprintf("u%d", i)
		for j := 0; j < 10; j++ {
			e.InsertEvent(u, fmt.Sprintf("item-%d", j), "")
		}
	}
	if err := e.TrainNow(); err != nil {
		t.Fatal(err)
	}
	e.InsertEvent("probe", "item-0", "")
	if got := len(e.Recommend("probe", 3)); got > 3 {
		t.Errorf("Recommend(3) returned %d items", got)
	}
	// n out of range falls back to the default.
	if got := len(e.Recommend("probe", -1)); got > DefaultConfig().DefaultN {
		t.Errorf("Recommend(-1) returned %d items", got)
	}
}

func TestTrainingIsAtomicUnderQueries(t *testing.T) {
	e := New(DefaultConfig())
	seedClusters(e)
	if err := e.TrainNow(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				e.Recommend("sci-user-1", 5)
			}
		}
	}()
	for i := 0; i < 5; i++ {
		if err := e.TrainNow(); err != nil {
			t.Errorf("TrainNow: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	_, _, trains := e.Stats()
	if trains != 6 {
		t.Errorf("trains = %d, want 6", trains)
	}
}

func TestStatsAndModelInfo(t *testing.T) {
	e := New(DefaultConfig())
	e.InsertEvent("u", "i", "5")
	e.Recommend("u", 1)
	if err := e.TrainNow(); err != nil {
		t.Fatal(err)
	}
	posts, queries, trains := e.Stats()
	if posts != 1 || queries != 1 || trains != 1 {
		t.Errorf("stats = %d/%d/%d", posts, queries, trains)
	}
	if e.ModelInfo() == "" {
		t.Error("empty model info")
	}
	if e.EventCount() != 1 {
		t.Errorf("EventCount = %d", e.EventCount())
	}
}

func TestPseudonymousIdentifiersWorkUnchanged(t *testing.T) {
	// The LRS must behave identically when identifiers are PProx
	// pseudonyms (base64 blobs) — transparency is the paper's core
	// claim ("PProx does not modify in any way the results returned by
	// the LRS").
	e := New(DefaultConfig())
	pseudo := func(s string) string { return "b64:" + s + "==/opaque" }
	for i := 0; i < 15; i++ {
		u := pseudo(fmt.Sprintf("user%d", i))
		e.InsertEvent(u, pseudo("itemA"), "")
		e.InsertEvent(u, pseudo("itemB"), "")
	}
	for i := 0; i < 5; i++ {
		e.InsertEvent(pseudo(fmt.Sprintf("other%d", i)), pseudo("itemC"), "")
	}
	e.InsertEvent(pseudo("probe"), pseudo("itemA"), "")
	if err := e.TrainNow(); err != nil {
		t.Fatal(err)
	}
	recs := e.Recommend(pseudo("probe"), 1)
	if len(recs) != 1 || recs[0] != pseudo("itemB") {
		t.Errorf("recs = %v, want [%s]", recs, pseudo("itemB"))
	}
}

func TestEngineSnapshotRestore(t *testing.T) {
	e := New(DefaultConfig())
	seedClusters(e)
	e.InsertEvent("probe", "dune", "")

	var buf bytes.Buffer
	if err := e.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh engine restored from the snapshot, retrained as
	// Harness rebuilds its model from persisted inputs.
	restored, err := NewFromSnapshot(DefaultConfig(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.EventCount() != e.EventCount() {
		t.Fatalf("restored %d events, want %d", restored.EventCount(), e.EventCount())
	}
	if err := restored.TrainNow(); err != nil {
		t.Fatal(err)
	}
	recs := restored.Recommend("probe", 2)
	if len(recs) == 0 || (recs[0] != "foundation" && recs[0] != "hyperion") {
		t.Errorf("recommendations after restore = %v", recs)
	}
}

func TestEngineSnapshotRejectsGarbage(t *testing.T) {
	if _, err := NewFromSnapshot(DefaultConfig(), strings.NewReader("junk")); err == nil {
		t.Error("garbage snapshot accepted")
	}
}

// TestFailedInsertReleasesIdemKey: an event rejected by a WAL append
// failure must release its idempotency key, so the client's retry is
// retried for real instead of being dropped as a duplicate of an event
// that was never stored.
func TestFailedInsertReleasesIdemKey(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WALDir = t.TempDir()
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil { // every append now fails
		t.Fatal(err)
	}
	if stored, err := e.InsertTypedEventIdem("u", "i", "", "", "k"); stored || err == nil {
		t.Fatalf("insert on dead log: stored=%v err=%v", stored, err)
	}
	// The retry must surface the storage error again — (false, nil)
	// here would mean the key leaked and the event can never be stored.
	if stored, err := e.InsertTypedEventIdem("u", "i", "", "", "k"); stored || err == nil {
		t.Fatalf("retry after failure: stored=%v err=%v (idempotency key leaked)", stored, err)
	}
	if e.DupEvents() != 0 {
		t.Fatalf("dups = %d, want 0", e.DupEvents())
	}
	if e.WALErrors() != 2 {
		t.Fatalf("wal errors = %d, want 2", e.WALErrors())
	}
}

// TestIdemRegistryReleaseAndStalePairing: release undoes exactly the
// claim it is paired with; a stale (key, slot) pairing is a no-op and
// cannot evict a newer live claim of the same key.
func TestIdemRegistryReleaseAndStalePairing(t *testing.T) {
	var ir idemRegistry
	s1, ok := ir.claim("k")
	if !ok {
		t.Fatal("fresh claim refused")
	}
	ir.release("k", s1)
	if _, ok := ir.claim("k"); !ok {
		t.Fatal("key not reclaimable after release")
	}
	ir.release("k", s1) // stale: slot s1 no longer holds "k"
	if _, ok := ir.claim("k"); ok {
		t.Fatal("stale release evicted the live claim")
	}
}
