package engine

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"pprox/internal/lrs/store"
)

func repseudoEngine(t *testing.T, shards int) *Engine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Trainer = tinyTrainer()
	cfg.Shards = shards
	return New(cfg)
}

func rekeyUser(p string) (string, error) {
	if !strings.HasPrefix(p, "old:") {
		return "", fmt.Errorf("unexpected pseudonym %q", p)
	}
	return "new:" + strings.TrimPrefix(p, "old:"), nil
}

func TestRepseudonymizeRewritesEveryEvent(t *testing.T) {
	e := repseudoEngine(t, 4)
	for i := 0; i < 60; i++ {
		e.InsertEvent(fmt.Sprintf("old:u%d", i%6), fmt.Sprintf("item-%d", i%9), "")
	}
	if err := e.TrainNow(); err != nil {
		t.Fatal(err)
	}

	job, err := e.Repseudonymize("user", rekeyUser)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	if job.Migrated() != 60 {
		t.Fatalf("migrated = %d", job.Migrated())
	}
	e.ForEachEvent(func(d store.Document) {
		if !strings.HasPrefix(d.Fields["user"], "new:") {
			t.Fatalf("unrotated event: %v", d.Fields)
		}
	})
	// The job's final retrain speaks the new pseudonym space: a rotated
	// user still gets community recommendations.
	if recs := e.Recommend("new:u0", 5); len(recs) == 0 {
		t.Fatal("no recommendations after rotation retrain")
	}
	runs, failures, migrated := e.RepseudoStats()
	if runs != 1 || failures != 0 || migrated != 60 {
		t.Fatalf("stats = (%d, %d, %d)", runs, failures, migrated)
	}
	if e.RepseudoActive() {
		t.Fatal("job still marked active")
	}
}

func TestRepseudonymizeItemFieldKeepsRouting(t *testing.T) {
	e := repseudoEngine(t, 3)
	for i := 0; i < 30; i++ {
		e.InsertEvent(fmt.Sprintf("u%d", i%5), fmt.Sprintf("old:i%d", i%7), "")
	}
	job, err := e.Repseudonymize("item", func(p string) (string, error) {
		return "new:" + strings.TrimPrefix(p, "old:"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 5; u++ {
		user := fmt.Sprintf("u%d", u)
		docs := e.log.FindBy("user", user)
		if len(docs) == 0 {
			t.Fatalf("user %s lost their history", user)
		}
		for _, d := range docs {
			if !strings.HasPrefix(d.Fields["item"], "new:") {
				t.Fatalf("unrotated item: %v", d.Fields)
			}
			if e.log.Owner(user) != e.log.Owner(d.Fields["user"]) {
				t.Fatal("item rotation moved a user")
			}
		}
	}
}

// TestRepseudonymizeServesAndJournalsConcurrentInserts: posts arriving
// while shards are staged are not lost and come out rotated. The mapping
// function blocks on its first call until the concurrent posts have been
// accepted, guaranteeing they race with the staging phase.
func TestRepseudonymizeServesAndJournalsConcurrentInserts(t *testing.T) {
	e := repseudoEngine(t, 4)
	for i := 0; i < 40; i++ {
		e.InsertEvent(fmt.Sprintf("old:u%d", i%8), fmt.Sprintf("item-%d", i%6), "")
	}

	release := make(chan struct{})
	var once sync.Once
	job, err := e.Repseudonymize("user", func(p string) (string, error) {
		once.Do(func() { <-release })
		return rekeyUser(p)
	})
	if err != nil {
		t.Fatal(err)
	}

	// While the job is staging shard 0, keep serving: posts and queries.
	for i := 0; i < 20; i++ {
		if stored, err := e.InsertTypedEventIdem(fmt.Sprintf("old:u%d", i%8), fmt.Sprintf("live-%d", i), "", "", ""); !stored || err != nil {
			t.Fatalf("post rejected during re-pseudonymization: stored=%v err=%v", stored, err)
		}
		e.Recommend(fmt.Sprintf("old:u%d", i%8), 5)
	}
	if done, total := e.RepseudoProgress(); total != 4 || done == 4 {
		t.Fatalf("progress (%d, %d) while mapFn is gated", done, total)
	}
	// A second job is refused while one runs.
	if _, err := e.Repseudonymize("user", rekeyUser); !errors.Is(err, ErrRepseudoActive) {
		t.Fatalf("concurrent job: %v", err)
	}
	close(release)
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}

	if e.EventCount() != 60 {
		t.Fatalf("events after rotation = %d, want 60", e.EventCount())
	}
	live := 0
	e.ForEachEvent(func(d store.Document) {
		if !strings.HasPrefix(d.Fields["user"], "new:") {
			t.Fatalf("unrotated event survived: %v", d.Fields)
		}
		if strings.HasPrefix(d.Fields["item"], "live-") {
			live++
		}
	})
	if live != 20 {
		t.Fatalf("concurrent posts surviving = %d, want 20", live)
	}
	if job.Migrated() != 60 {
		t.Fatalf("migrated = %d", job.Migrated())
	}
}

// TestRepseudonymizeFailsClosed: one unmappable record aborts the whole
// job; nothing is rewritten and diverted inserts are flushed back.
func TestRepseudonymizeFailsClosed(t *testing.T) {
	e := repseudoEngine(t, 3)
	for i := 0; i < 20; i++ {
		e.InsertEvent(fmt.Sprintf("old:u%d", i%4), fmt.Sprintf("item-%d", i%5), "")
	}
	e.InsertEvent("corrupt-pseudonym", "item-x", "")

	job, err := e.Repseudonymize("user", rekeyUser)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err == nil {
		t.Fatal("job succeeded over an unmappable pseudonym")
	}
	if e.EventCount() != 21 {
		t.Fatalf("events = %d", e.EventCount())
	}
	rotated := 0
	e.ForEachEvent(func(d store.Document) {
		if strings.HasPrefix(d.Fields["user"], "new:") {
			rotated++
		}
	})
	if rotated != 0 {
		t.Fatalf("%d events rewritten by a failed job", rotated)
	}
	_, failures, _ := e.RepseudoStats()
	if failures != 1 {
		t.Fatalf("failures = %d", failures)
	}
	if e.RepseudoActive() {
		t.Fatal("failed job still active")
	}
	// The engine accepts a fresh job after the failure.
	e.ForEachEvent(func(d store.Document) {})
}

func TestRepseudonymizeRejectsUnknownField(t *testing.T) {
	e := repseudoEngine(t, 2)
	if _, err := e.Repseudonymize("payload", rekeyUser); err == nil {
		t.Fatal("unknown field accepted")
	}
}

// TestRepseudonymizeSnapshotNeverMixesSpaces: a snapshot taken at any
// point during a rotation must capture the log in exactly one pseudonym
// space. The apply step (Phase B) replaces shards one by one; without
// applyMu held across it, a racing SaveSnapshot could capture a
// permanently mixed, unrecoverable log.
func TestRepseudonymizeSnapshotNeverMixesSpaces(t *testing.T) {
	e := repseudoEngine(t, 8)
	for i := 0; i < 200; i++ {
		e.InsertEvent(fmt.Sprintf("old:u%d", i%20), fmt.Sprintf("item-%d", i%9), "")
	}
	job, err := e.Repseudonymize("user", func(p string) (string, error) {
		time.Sleep(50 * time.Microsecond) // widen the race window
		return rekeyUser(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	for !job.Done() {
		var buf bytes.Buffer
		if err := e.SaveSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		s := buf.String()
		if strings.Contains(s, "old:u") && strings.Contains(s, "new:u") {
			t.Fatal("snapshot captured a half-rotated log")
		}
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	e.ForEachEvent(func(d store.Document) {
		if !strings.HasPrefix(d.Fields["user"], "new:") {
			t.Fatalf("unrotated event after job: %v", d.Fields)
		}
	})
}
