package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// shard.go defines the storage unit behind the sharded event log: one
// shard owns a slice of the pseudonym space and is either purely
// in-memory (MemShard) or durable (WALShard: append-only WAL + snapshot,
// where the snapshot is the compaction point and the WAL is replayed on
// restore). Both are Collections underneath, so the snapshot format is
// the store's existing one.

// eventsCollection is the collection name every shard stores events in.
const eventsCollection = "events"

// Shard is one slice of the sharded event log. Implementations are safe
// for concurrent use. The interface is sealed to this package: shard
// durability and the snapshot envelope are storage-layer concerns.
type Shard interface {
	// Insert appends one event. For durable shards the WAL append
	// happens before the in-memory apply, so an insert that returned
	// without error survives a process crash — and an OS crash or power
	// loss too when per-append fsync is on (WALShard.SetSync).
	Insert(fields map[string]string) error
	// FindBy returns documents whose field equals value, in insertion
	// order when the field is indexed.
	FindBy(field, value string) []Document
	// ScanOrdered visits every document in insertion order.
	ScanOrdered(fn func(Document) bool)
	// Count returns the number of stored documents.
	Count() int
	// Replace atomically swaps the shard contents for docs (in order).
	// Durable shards persist the new state before returning.
	Replace(docs []map[string]string) error
	// Compact makes the current state the durable baseline (snapshot +
	// empty WAL); a no-op for in-memory shards.
	Compact() error
	// Close releases resources without compacting.
	Close() error

	// snapshotInto serializes the shard's store (sealed to this package:
	// the sharded log composes shard snapshots into its own format).
	snapshotInto(w io.Writer) error
}

// MemShard is the in-memory shard: the store the single-node engine
// always had, confined to one slice of the pseudonym space.
type MemShard struct {
	store *Store
	col   *Collection
}

// NewMemShard creates an empty in-memory shard with secondary indexes on
// the given fields.
func NewMemShard(indexFields ...string) *MemShard {
	s := New()
	col := s.Collection(eventsCollection)
	for _, f := range indexFields {
		col.EnsureIndex(f)
	}
	return &MemShard{store: s, col: col}
}

func (m *MemShard) Insert(fields map[string]string) error {
	m.col.Insert(fields)
	return nil
}

func (m *MemShard) FindBy(field, value string) []Document { return m.col.FindBy(field, value) }
func (m *MemShard) ScanOrdered(fn func(Document) bool)    { m.col.ScanOrdered(fn) }
func (m *MemShard) Count() int                            { return m.col.Count() }

func (m *MemShard) Replace(docs []map[string]string) error {
	m.col.Clear()
	for _, fields := range docs {
		m.col.Insert(fields)
	}
	return nil
}

func (m *MemShard) Compact() error { return nil }
func (m *MemShard) Close() error   { return nil }

func (m *MemShard) snapshotInto(w io.Writer) error { return m.store.WriteSnapshot(w) }

// shardEnvelope is the on-disk snapshot of one WALShard: the store
// snapshot plus the WAL sequence number it covers. Replay applies only
// records past AppliedSeq, which makes the compaction sequence
// (write snapshot, rename, truncate WAL) crash-safe at every step.
type shardEnvelope struct {
	Version    int             `json:"version"`
	AppliedSeq uint64          `json:"applied_seq"`
	Store      json.RawMessage `json:"store"`
}

// shardEnvelopeVersion versions the shard snapshot envelope.
const shardEnvelopeVersion = 1

// WALShard is the durable shard: a MemShard-shaped collection whose
// inserts are WAL-logged and whose snapshot is the WAL compaction point.
type WALShard struct {
	dir string
	id  int

	mu         sync.Mutex // serializes appends, compaction, replace
	store      *Store
	col        *Collection
	wal        *wal
	seq        uint64 // last sequence number handed out
	appliedSeq uint64 // sequence covered by the on-disk snapshot
	fsync      bool   // fsync after every append (power-loss durability)
}

// shardSnapPath and shardWALPath name one shard's files.
func shardSnapPath(dir string, id int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d.snap", id))
}

func shardWALPath(dir string, id int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d.wal", id))
}

// OpenWALShard opens shard id under dir, restoring from its snapshot
// (if present) and replaying WAL records past the snapshot's
// applied_seq. The directory is created if needed.
func OpenWALShard(dir string, id int, indexFields ...string) (*WALShard, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: shard dir: %w", err)
	}
	st := New()
	var appliedSeq uint64
	snapPath := shardSnapPath(dir, id)
	if b, err := os.ReadFile(snapPath); err == nil {
		var env shardEnvelope
		if err := json.Unmarshal(b, &env); err != nil {
			return nil, fmt.Errorf("store: shard %d snapshot: %w", id, err)
		}
		if env.Version != shardEnvelopeVersion {
			return nil, fmt.Errorf("store: shard %d snapshot version %d unsupported", id, env.Version)
		}
		loaded, err := LoadSnapshot(bytes.NewReader(env.Store))
		if err != nil {
			return nil, fmt.Errorf("store: shard %d: %w", id, err)
		}
		st = loaded
		appliedSeq = env.AppliedSeq
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: read shard %d snapshot: %w", id, err)
	}

	col := st.Collection(eventsCollection)
	for _, f := range indexFields {
		col.EnsureIndex(f)
	}

	seq := appliedSeq
	w, last, err := openWAL(shardWALPath(dir, id), func(rec walRecord) {
		if rec.Seq <= appliedSeq {
			return // already folded into the snapshot
		}
		col.Insert(rec.Fields)
	})
	if err != nil {
		return nil, err
	}
	if last > seq {
		seq = last
	}
	return &WALShard{dir: dir, id: id, store: st, col: col, wal: w, seq: seq, appliedSeq: appliedSeq}, nil
}

// SetSync toggles per-append fsync. Off (the default) the WAL write
// reaches the OS page cache before the insert is acknowledged: the event
// survives a process crash, but an OS crash or power loss may lose the
// tail written since the last flush. On, every append is fsynced before
// the insert returns, extending the guarantee to power loss at the cost
// of one disk flush per event.
func (w *WALShard) SetSync(on bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.fsync = on
}

func (w *WALShard) Insert(fields map[string]string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	rec := walRecord{Seq: w.seq + 1, Fields: fields}
	if err := w.wal.append(rec); err != nil {
		return err
	}
	if w.fsync {
		if err := w.wal.sync(); err != nil {
			// The record may or may not have reached the platter. The
			// insert is rejected (not applied in memory, not acked), but
			// a restart that finds the record intact will replay it —
			// at-least-once on a failing disk, never a silent loss.
			return fmt.Errorf("store: fsync wal append: %w", err)
		}
	}
	w.seq++
	w.col.Insert(fields)
	return nil
}

func (w *WALShard) FindBy(field, value string) []Document { return w.col.FindBy(field, value) }
func (w *WALShard) ScanOrdered(fn func(Document) bool)    { w.col.ScanOrdered(fn) }
func (w *WALShard) Count() int                            { return w.col.Count() }

// Replace swaps the shard contents and compacts immediately, so the
// replacement (a re-pseudonymization apply, a restore re-route) is
// durable the moment it returns.
func (w *WALShard) Replace(docs []map[string]string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.col.Clear()
	for _, fields := range docs {
		w.col.Insert(fields)
	}
	return w.compactLocked()
}

// Compact writes the snapshot (atomically: temp + fsync + rename) with
// applied_seq = the current WAL head, then truncates the WAL. Crash
// windows: before the rename the old snapshot + full WAL restore the
// same state; between rename and truncate the replay skips every record
// at or below applied_seq.
func (w *WALShard) Compact() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.compactLocked()
}

func (w *WALShard) compactLocked() error {
	env := shardEnvelope{Version: shardEnvelopeVersion, AppliedSeq: w.seq}
	err := writeFileAtomic(shardSnapPath(w.dir, w.id), func(out io.Writer) error {
		var buf bytes.Buffer
		if err := w.store.WriteSnapshot(&buf); err != nil {
			return err
		}
		env.Store = json.RawMessage(buf.Bytes())
		enc := json.NewEncoder(out)
		return enc.Encode(env)
	})
	if err != nil {
		return err
	}
	w.appliedSeq = w.seq
	return w.wal.reset()
}

// Sync flushes the WAL to stable storage.
func (w *WALShard) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.wal.sync()
}

func (w *WALShard) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.wal.close()
}

func (w *WALShard) snapshotInto(out io.Writer) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.store.WriteSnapshot(out)
}
