package store

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func buildStore(t *testing.T) *Store {
	t.Helper()
	s := New()
	events := s.Collection("events")
	events.EnsureIndex("user")
	for i := 0; i < 20; i++ {
		events.Insert(map[string]string{
			"user": "u" + strconv.Itoa(i%4),
			"item": "i" + strconv.Itoa(i),
		})
	}
	items := s.Collection("items")
	items.Insert(map[string]string{"name": "catalog-entry"})
	return s
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := buildStore(t)
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if got := restored.Collection("events").Count(); got != 20 {
		t.Errorf("restored events = %d, want 20", got)
	}
	if got := restored.Collection("items").Count(); got != 1 {
		t.Errorf("restored items = %d", got)
	}
	// Secondary indexes survive.
	if got := len(restored.Collection("events").FindBy("user", "u1")); got != 5 {
		t.Errorf("indexed lookup after restore = %d, want 5", got)
	}
	// Primary-key allocation continues without collisions.
	id := restored.Collection("events").Insert(map[string]string{"user": "new"})
	if _, exists := restored.Collection("events").Get(id); !exists {
		t.Fatal("insert after restore failed")
	}
	if restored.Collection("events").Count() != 21 {
		t.Error("insert after restore collided with restored document")
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	s := buildStore(t)
	var a, b bytes.Buffer
	if err := s.WriteSnapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical state produced different snapshots")
	}
}

func TestLoadSnapshotRejectsMalformed(t *testing.T) {
	if _, err := LoadSnapshot(strings.NewReader("{not json")); err == nil {
		t.Error("malformed snapshot accepted")
	}
	if _, err := LoadSnapshot(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("unknown snapshot version accepted")
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(restored.Names()); got != 0 {
		t.Errorf("restored empty store has %d collections", got)
	}
}

// TestLoadSnapshotIndexesPreserveInsertionOrder: snapshot docs are sorted
// lexicographically by ID for byte determinism ("events/10" < "events/2"),
// but the restored secondary indexes must still return documents in
// insertion order — Shard.FindBy's contract, which the engine's
// recent-history and blacklist logic depends on across a restart.
func TestLoadSnapshotIndexesPreserveInsertionOrder(t *testing.T) {
	s := New()
	c := s.Collection("events")
	c.EnsureIndex("user")
	// More than 9 docs so lexicographic and numeric ID order diverge.
	const n = 25
	for i := 0; i < n; i++ {
		c.Insert(map[string]string{"user": "u", "item": "i" + strconv.Itoa(i)})
	}

	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}

	docs := restored.Collection("events").FindBy("user", "u")
	if len(docs) != n {
		t.Fatalf("restored lookup = %d docs, want %d", len(docs), n)
	}
	for i, d := range docs {
		if want := "i" + strconv.Itoa(i); d.Fields["item"] != want {
			t.Fatalf("doc %d after restore = %q, want %q (index order not insertion order)", i, d.Fields["item"], want)
		}
	}
}
