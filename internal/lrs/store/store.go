// Package store is the in-memory document store backing the legacy
// recommendation system, standing in for the MongoDB instance that Harness
// uses to persist engine data and inputs pending processing (§7 of the
// PProx paper): feedback events received via post requests are stored here
// until the periodic training job folds them into the model.
//
// It is a deliberately small but real database: named collections of
// string-field documents, auto-assigned primary keys, optional secondary
// indexes, and atomic scans — everything the Universal Recommender
// substrate needs, nothing more.
package store

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// ErrNoCollection reports access to a collection that was never created.
var ErrNoCollection = errors.New("store: no such collection")

// Document is one stored record: an assigned primary key plus string
// fields.
type Document struct {
	ID     string
	Fields map[string]string
}

func (d Document) clone() Document {
	cp := Document{ID: d.ID, Fields: make(map[string]string, len(d.Fields))}
	for k, v := range d.Fields {
		cp.Fields[k] = v
	}
	return cp
}

// Store is a set of named collections.
type Store struct {
	mu          sync.Mutex
	collections map[string]*Collection
}

// New creates an empty store.
func New() *Store {
	return &Store{collections: make(map[string]*Collection)}
}

// Collection returns the named collection, creating it if needed.
func (s *Store) Collection(name string) *Collection {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.collections[name]
	if !ok {
		c = newCollection(name)
		s.collections[name] = c
	}
	return c
}

// Drop removes a collection and its contents. Dropping an absent
// collection returns ErrNoCollection.
func (s *Store) Drop(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.collections[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNoCollection, name)
	}
	delete(s.collections, name)
	return nil
}

// Names lists existing collections.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.collections))
	for n := range s.collections {
		names = append(names, n)
	}
	return names
}

// Collection is one document collection with optional secondary indexes.
type Collection struct {
	name string

	mu      sync.RWMutex
	docs    map[string]Document
	indexes map[string]map[string][]string // field → value → doc IDs
	nextID  uint64
}

func newCollection(name string) *Collection {
	return &Collection{
		name:    name,
		docs:    make(map[string]Document),
		indexes: make(map[string]map[string][]string),
	}
}

// EnsureIndex creates a secondary index on a field; existing documents are
// indexed immediately. Creating an existing index is a no-op.
func (c *Collection) EnsureIndex(field string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.indexes[field]; ok {
		return
	}
	idx := make(map[string][]string)
	for id, doc := range c.docs {
		if v, ok := doc.Fields[field]; ok {
			idx[v] = append(idx[v], id)
		}
	}
	c.indexes[field] = idx
}

// Insert stores a document with an auto-assigned primary key and returns
// the key. Field maps are copied.
func (c *Collection) Insert(fields map[string]string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	id := c.name + "/" + strconv.FormatUint(c.nextID, 10)
	doc := Document{ID: id, Fields: make(map[string]string, len(fields))}
	for k, v := range fields {
		doc.Fields[k] = v
	}
	c.docs[id] = doc
	for field, idx := range c.indexes {
		if v, ok := doc.Fields[field]; ok {
			idx[v] = append(idx[v], id)
		}
	}
	return id
}

// Get returns the document with the given primary key.
func (c *Collection) Get(id string) (Document, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.docs[id]
	if !ok {
		return Document{}, false
	}
	return d.clone(), true
}

// FindBy returns all documents whose field equals value, using the
// secondary index when one exists and a full scan otherwise.
func (c *Collection) FindBy(field, value string) []Document {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if idx, ok := c.indexes[field]; ok {
		ids := idx[value]
		out := make([]Document, 0, len(ids))
		for _, id := range ids {
			if d, ok := c.docs[id]; ok {
				out = append(out, d.clone())
			}
		}
		return out
	}
	var out []Document
	for _, d := range c.docs {
		if d.Fields[field] == value {
			out = append(out, d.clone())
		}
	}
	return out
}

// Delete removes a document by primary key; it reports whether the
// document existed.
func (c *Collection) Delete(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	doc, ok := c.docs[id]
	if !ok {
		return false
	}
	delete(c.docs, id)
	for field, idx := range c.indexes {
		v, ok := doc.Fields[field]
		if !ok {
			continue
		}
		ids := idx[v]
		for i, cand := range ids {
			if cand == id {
				idx[v] = append(ids[:i], ids[i+1:]...)
				break
			}
		}
		if len(idx[v]) == 0 {
			delete(idx, v)
		}
	}
	return true
}

// Count returns the number of stored documents.
func (c *Collection) Count() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs)
}

// Scan visits every document (in unspecified order) until fn returns
// false. Documents are cloned, so fn may retain them; mutating the
// collection from within fn deadlocks, as with any cursor.
func (c *Collection) Scan(fn func(Document) bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, d := range c.docs {
		if !fn(d.clone()) {
			return
		}
	}
}

// ScanOrdered visits every document in insertion order (ascending
// primary key) until fn returns false. The snapshot of the collection is
// taken under the read lock, then fn runs unlocked, so fn may query the
// collection. The deterministic order is what shard replay and the
// training job need: CCO downsampling depends on per-user event order.
func (c *Collection) ScanOrdered(fn func(Document) bool) {
	c.mu.RLock()
	docs := make([]Document, 0, len(c.docs))
	for _, d := range c.docs {
		docs = append(docs, d.clone())
	}
	c.mu.RUnlock()
	sort.Slice(docs, func(i, j int) bool { return docSeq(docs[i].ID) < docSeq(docs[j].ID) })
	for _, d := range docs {
		if !fn(d) {
			return
		}
	}
}

// docSeq extracts the numeric insertion sequence from a primary key of
// the form "<collection>/<n>"; malformed keys sort first.
func docSeq(id string) uint64 {
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] == '/' {
			n, err := strconv.ParseUint(id[i+1:], 10, 64)
			if err != nil {
				return 0
			}
			return n
		}
	}
	return 0
}

// Clear removes every document but keeps index definitions, as when the
// training job consumes pending inputs.
func (c *Collection) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.docs = make(map[string]Document)
	for field := range c.indexes {
		c.indexes[field] = make(map[string][]string)
	}
}
