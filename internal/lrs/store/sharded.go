package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// sharded.go assembles shards into the event log the engine sees: a
// consistent-hash router over the *pseudonym* space. Routing is by the
// user pseudonym, which pins a user's whole history to one shard — the
// only ordering CCO training depends on is per-user event order, so
// per-shard ordered scans reconstruct a training-equivalent stream. The
// shards only ever see det_enc pseudonyms; raw identifiers never reach
// this layer (the adversary suite taps the WAL files to prove it).

// RouteField is the event field the log shards on.
const RouteField = "user"

// ShardedConfig parameterizes a sharded log.
type ShardedConfig struct {
	// Shards is the shard count; values below 1 mean a single shard.
	Shards int
	// Dir, when set, backs every shard with a WAL + snapshot pair under
	// this directory; empty keeps shards in memory. By default the WAL
	// guarantees accepted inserts against process crashes; see Sync.
	Dir string
	// Sync fsyncs every WAL append before the insert is acknowledged,
	// extending durability from process crashes to OS crashes and power
	// loss, at the cost of one disk flush per event. Ignored without Dir.
	Sync bool
	// IndexFields are secondary indexes created on every shard.
	IndexFields []string
}

// ShardedLog is the consistent-hash-sharded event log.
type ShardedLog struct {
	ring   *Ring
	shards []Shard
	dir    string
}

// OpenShardedLog builds the log, opening (and replaying) WAL shards when
// cfg.Dir is set.
func OpenShardedLog(cfg ShardedConfig) (*ShardedLog, error) {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	l := &ShardedLog{ring: NewRing(n), shards: make([]Shard, n), dir: cfg.Dir}
	for i := 0; i < n; i++ {
		if cfg.Dir == "" {
			l.shards[i] = NewMemShard(cfg.IndexFields...)
			continue
		}
		s, err := OpenWALShard(cfg.Dir, i, cfg.IndexFields...)
		if err != nil {
			l.Close()
			return nil, err
		}
		s.SetSync(cfg.Sync)
		l.shards[i] = s
	}
	return l, nil
}

// NumShards returns the shard count.
func (l *ShardedLog) NumShards() int { return len(l.shards) }

// Durable reports whether shards are WAL-backed.
func (l *ShardedLog) Durable() bool { return l.dir != "" }

// Owner returns the shard index owning the routing key.
func (l *ShardedLog) Owner(key string) int { return l.ring.Owner(key) }

// Insert routes the event to the shard owning its user pseudonym and
// appends it there, returning the shard index.
func (l *ShardedLog) Insert(fields map[string]string) (int, error) {
	i := l.ring.Owner(fields[RouteField])
	if err := l.shards[i].Insert(fields); err != nil {
		return i, err
	}
	return i, nil
}

// FindBy returns matching documents. A lookup on the routing field goes
// straight to the owning shard; any other field fans out over all shards
// in shard order.
func (l *ShardedLog) FindBy(field, value string) []Document {
	if field == RouteField {
		return l.shards[l.ring.Owner(value)].FindBy(field, value)
	}
	var out []Document
	for _, s := range l.shards {
		out = append(out, s.FindBy(field, value)...)
	}
	return out
}

// ScanOrdered visits every document, shard by shard, each shard in
// insertion order — per-user order is global order because a user lives
// on exactly one shard.
func (l *ShardedLog) ScanOrdered(fn func(Document) bool) {
	for _, s := range l.shards {
		stop := false
		s.ScanOrdered(func(d Document) bool {
			if !fn(d) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// ScanShard visits one shard's documents in insertion order.
func (l *ShardedLog) ScanShard(i int, fn func(Document) bool) {
	l.shards[i].ScanOrdered(fn)
}

// ShardCount returns one shard's document count.
func (l *ShardedLog) ShardCount(i int) int { return l.shards[i].Count() }

// ReplaceShard atomically swaps one shard's contents.
func (l *ShardedLog) ReplaceShard(i int, docs []map[string]string) error {
	return l.shards[i].Replace(docs)
}

// Count sums document counts over all shards.
func (l *ShardedLog) Count() int {
	total := 0
	for _, s := range l.shards {
		total += s.Count()
	}
	return total
}

// Compact snapshots every durable shard and truncates its WAL.
func (l *ShardedLog) Compact() error {
	for i, s := range l.shards {
		if s == nil {
			continue
		}
		if err := s.Compact(); err != nil {
			return fmt.Errorf("store: compact shard %d: %w", i, err)
		}
	}
	return nil
}

// Close releases every shard without compacting.
func (l *ShardedLog) Close() error {
	var first error
	for _, s := range l.shards {
		if s == nil {
			continue
		}
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// shardedSnapshotFile is the v2 snapshot: one store snapshot per shard.
// Version 1 (a bare store snapshot) remains loadable via Restore, so
// pre-sharding snapshot files keep working.
type shardedSnapshotFile struct {
	Version int               `json:"version"`
	Shards  []json.RawMessage `json:"shards"`
}

// shardedSnapshotVersion tags the sharded snapshot layout.
const shardedSnapshotVersion = 2

// WriteSnapshot serializes the whole log: shard stores in shard order.
func (l *ShardedLog) WriteSnapshot(w io.Writer) error {
	file := shardedSnapshotFile{Version: shardedSnapshotVersion}
	for i, s := range l.shards {
		var buf bytes.Buffer
		if err := s.snapshotInto(&buf); err != nil {
			return fmt.Errorf("store: snapshot shard %d: %w", i, err)
		}
		file.Shards = append(file.Shards, json.RawMessage(buf.Bytes()))
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(file); err != nil {
		return fmt.Errorf("store: write sharded snapshot: %w", err)
	}
	return nil
}

// WriteSnapshotFile persists the snapshot to path atomically (temp +
// fsync + rename), so a crash mid-save leaves the previous file intact.
func (l *ShardedLog) WriteSnapshotFile(path string) error {
	return writeFileAtomic(path, l.WriteSnapshot)
}

// Restore loads a v1 store snapshot or a v2 sharded snapshot and
// re-inserts every event through the router, so a restore may change the
// shard count: documents are re-routed by their current pseudonyms.
// Per-user order is preserved (a user's history sits in one source
// shard, scanned in insertion order). Restore into a non-empty log is an
// error.
func (l *ShardedLog) Restore(r io.Reader) error {
	if l.Count() > 0 {
		return fmt.Errorf("store: restore into non-empty log")
	}
	b, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("store: read snapshot: %w", err)
	}
	var probe struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(b, &probe); err != nil {
		return fmt.Errorf("store: read snapshot: %w", err)
	}
	insertAll := func(st *Store) error {
		var insErr error
		st.Collection(eventsCollection).ScanOrdered(func(d Document) bool {
			if _, err := l.Insert(d.Fields); err != nil {
				insErr = err
				return false
			}
			return true
		})
		return insErr
	}
	switch probe.Version {
	case snapshotVersion: // v1: one flat store
		st, err := LoadSnapshot(bytes.NewReader(b))
		if err != nil {
			return err
		}
		return insertAll(st)
	case shardedSnapshotVersion:
		var file shardedSnapshotFile
		if err := json.Unmarshal(b, &file); err != nil {
			return fmt.Errorf("store: read sharded snapshot: %w", err)
		}
		for i, raw := range file.Shards {
			st, err := LoadSnapshot(bytes.NewReader(raw))
			if err != nil {
				return fmt.Errorf("store: sharded snapshot shard %d: %w", i, err)
			}
			if err := insertAll(st); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("store: snapshot version %d unsupported", probe.Version)
	}
}
