package store

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"testing/quick"
)

func TestInsertGetRoundTrip(t *testing.T) {
	c := New().Collection("events")
	id := c.Insert(map[string]string{"user": "u1", "item": "i1"})
	doc, ok := c.Get(id)
	if !ok {
		t.Fatal("document not found after insert")
	}
	if doc.Fields["user"] != "u1" || doc.Fields["item"] != "i1" {
		t.Errorf("fields = %v", doc.Fields)
	}
	if _, ok := c.Get("events/999"); ok {
		t.Error("found a never-inserted document")
	}
}

func TestInsertCopiesFields(t *testing.T) {
	c := New().Collection("events")
	fields := map[string]string{"user": "u1"}
	id := c.Insert(fields)
	fields["user"] = "mutated"
	doc, _ := c.Get(id)
	if doc.Fields["user"] != "u1" {
		t.Error("stored document aliases caller map")
	}
}

func TestGetReturnsClone(t *testing.T) {
	c := New().Collection("events")
	id := c.Insert(map[string]string{"user": "u1"})
	doc, _ := c.Get(id)
	doc.Fields["user"] = "mutated"
	again, _ := c.Get(id)
	if again.Fields["user"] != "u1" {
		t.Error("Get exposed internal storage")
	}
}

func TestFindByWithAndWithoutIndex(t *testing.T) {
	c := New().Collection("events")
	for i := 0; i < 10; i++ {
		c.Insert(map[string]string{"user": "u" + strconv.Itoa(i%3), "item": "i" + strconv.Itoa(i)})
	}
	unindexed := c.FindBy("user", "u1")
	c.EnsureIndex("user")
	indexed := c.FindBy("user", "u1")
	if len(unindexed) != len(indexed) {
		t.Errorf("unindexed found %d, indexed found %d", len(unindexed), len(indexed))
	}
	// i%3 == 1 for i in {1, 4, 7} → 3 documents.
	if len(indexed) != 3 {
		t.Errorf("found %d docs for u1, want 3", len(indexed))
	}
}

func TestIndexMaintainedOnInsertAndDelete(t *testing.T) {
	c := New().Collection("events")
	c.EnsureIndex("user")
	id1 := c.Insert(map[string]string{"user": "u1"})
	c.Insert(map[string]string{"user": "u1"})
	if got := len(c.FindBy("user", "u1")); got != 2 {
		t.Fatalf("found %d, want 2", got)
	}
	if !c.Delete(id1) {
		t.Fatal("delete reported missing document")
	}
	if got := len(c.FindBy("user", "u1")); got != 1 {
		t.Errorf("after delete found %d, want 1", got)
	}
	if c.Delete(id1) {
		t.Error("second delete of same id succeeded")
	}
}

func TestEnsureIndexBackfills(t *testing.T) {
	c := New().Collection("events")
	c.Insert(map[string]string{"user": "u1"})
	c.Insert(map[string]string{"user": "u2"})
	c.EnsureIndex("user")
	if got := len(c.FindBy("user", "u2")); got != 1 {
		t.Errorf("backfilled index found %d, want 1", got)
	}
	c.EnsureIndex("user") // idempotent
	if got := len(c.FindBy("user", "u2")); got != 1 {
		t.Errorf("after duplicate EnsureIndex found %d, want 1", got)
	}
}

func TestScanAndClear(t *testing.T) {
	c := New().Collection("events")
	for i := 0; i < 5; i++ {
		c.Insert(map[string]string{"n": strconv.Itoa(i)})
	}
	seen := 0
	c.Scan(func(Document) bool { seen++; return true })
	if seen != 5 {
		t.Errorf("scan visited %d, want 5", seen)
	}
	seen = 0
	c.Scan(func(Document) bool { seen++; return false })
	if seen != 1 {
		t.Errorf("early-stop scan visited %d, want 1", seen)
	}
	c.EnsureIndex("n")
	c.Clear()
	if c.Count() != 0 {
		t.Errorf("count after clear = %d", c.Count())
	}
	if len(c.FindBy("n", "3")) != 0 {
		t.Error("index not cleared")
	}
	// Collection still usable after Clear.
	c.Insert(map[string]string{"n": "9"})
	if len(c.FindBy("n", "9")) != 1 {
		t.Error("index broken after clear")
	}
}

func TestDropCollection(t *testing.T) {
	s := New()
	s.Collection("a").Insert(map[string]string{"x": "1"})
	if err := s.Drop("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Drop("a"); !errors.Is(err, ErrNoCollection) {
		t.Fatalf("second drop: err=%v", err)
	}
	if s.Collection("a").Count() != 0 {
		t.Error("recreated collection kept documents")
	}
}

func TestNamesListsCollections(t *testing.T) {
	s := New()
	s.Collection("a")
	s.Collection("b")
	if got := len(s.Names()); got != 2 {
		t.Errorf("Names = %v", s.Names())
	}
}

func TestUniquePrimaryKeysProperty(t *testing.T) {
	c := New().Collection("x")
	f := func(n uint8) bool {
		ids := make(map[string]bool)
		for i := 0; i < int(n); i++ {
			id := c.Insert(map[string]string{})
			if ids[id] {
				return false
			}
			ids[id] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentInsertFind(t *testing.T) {
	c := New().Collection("events")
	c.EnsureIndex("user")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			user := fmt.Sprintf("u%d", g)
			for i := 0; i < 200; i++ {
				c.Insert(map[string]string{"user": user, "item": strconv.Itoa(i)})
				c.FindBy("user", user)
			}
		}(g)
	}
	wg.Wait()
	if c.Count() != 800 {
		t.Errorf("count = %d, want 800", c.Count())
	}
	for g := 0; g < 4; g++ {
		if got := len(c.FindBy("user", fmt.Sprintf("u%d", g))); got != 200 {
			t.Errorf("u%d has %d docs, want 200", g, got)
		}
	}
}
