package store

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring.go places pseudonyms on shards by consistent hashing. The LRS
// only ever routes on det_enc pseudonyms (the proxies strip raw
// identifiers before anything reaches this layer), so shard placement is
// a function of ciphertext: an adversary tapping the assignment learns a
// hash of an already-unlinkable value, and a key rotation — which
// replaces every pseudonym — re-draws the whole placement independently
// of the old one. Virtual nodes keep the load spread even for small
// shard counts.

// ringReplicas is the number of virtual nodes per shard.
const ringReplicas = 64

// Ring is a consistent-hash ring over a fixed shard set. It is immutable
// after construction and safe for concurrent use.
type Ring struct {
	shards int
	hashes []uint64 // sorted virtual-node positions
	owners []int    // owners[i] owns hashes[i]
}

// NewRing builds a ring over n shards (n ≥ 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	r := &Ring{
		shards: n,
		hashes: make([]uint64, 0, n*ringReplicas),
		owners: make([]int, 0, n*ringReplicas),
	}
	type vnode struct {
		hash  uint64
		owner int
	}
	vnodes := make([]vnode, 0, n*ringReplicas)
	for shard := 0; shard < n; shard++ {
		for rep := 0; rep < ringReplicas; rep++ {
			h := hash64("shard-" + strconv.Itoa(shard) + "#" + strconv.Itoa(rep))
			vnodes = append(vnodes, vnode{hash: h, owner: shard})
		}
	}
	sort.Slice(vnodes, func(i, j int) bool { return vnodes[i].hash < vnodes[j].hash })
	for _, v := range vnodes {
		r.hashes = append(r.hashes, v.hash)
		r.owners = append(r.owners, v.owner)
	}
	return r
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.shards }

// Owner returns the shard owning the key: the first virtual node at or
// after the key's position, wrapping around.
func (r *Ring) Owner(key string) int {
	if r.shards == 1 {
		return 0
	}
	h := hash64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.owners[i]
}

// hash64 is FNV-1a over the key bytes.
func hash64(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}
