package store

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// snapshot.go gives the document store durability: the MongoDB instance it
// substitutes persists engine inputs across restarts (§7), so a Harness
// operator can stop and resume without losing pending feedback. Snapshots
// are JSON streams: deterministic, diffable, and independent of the
// in-memory layout.

// snapshotFile is the serialized form of a whole store.
type snapshotFile struct {
	Version     int                  `json:"version"`
	Collections []collectionSnapshot `json:"collections"`
}

type collectionSnapshot struct {
	Name    string             `json:"name"`
	Indexes []string           `json:"indexes"`
	NextID  uint64             `json:"next_id"`
	Docs    []documentSnapshot `json:"docs"`
}

type documentSnapshot struct {
	ID     string            `json:"id"`
	Fields map[string]string `json:"fields"`
}

const snapshotVersion = 1

// WriteSnapshot serializes the whole store. Collections and documents are
// emitted in sorted order so identical states produce identical bytes.
func (s *Store) WriteSnapshot(w io.Writer) error {
	s.mu.Lock()
	collections := make([]*Collection, 0, len(s.collections))
	for _, c := range s.collections {
		collections = append(collections, c)
	}
	s.mu.Unlock()
	sort.Slice(collections, func(i, j int) bool { return collections[i].name < collections[j].name })

	file := snapshotFile{Version: snapshotVersion}
	for _, c := range collections {
		file.Collections = append(file.Collections, c.snapshot())
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(file); err != nil {
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	return nil
}

func (c *Collection) snapshot() collectionSnapshot {
	c.mu.RLock()
	defer c.mu.RUnlock()
	snap := collectionSnapshot{Name: c.name, NextID: c.nextID}
	for field := range c.indexes {
		snap.Indexes = append(snap.Indexes, field)
	}
	sort.Strings(snap.Indexes)
	for _, d := range c.docs {
		snap.Docs = append(snap.Docs, documentSnapshot{ID: d.ID, Fields: d.clone().Fields})
	}
	sort.Slice(snap.Docs, func(i, j int) bool { return snap.Docs[i].ID < snap.Docs[j].ID })
	return snap
}

// WriteSnapshotFile persists the snapshot to path atomically: the bytes
// go to a temp file in the same directory, are fsynced, and the temp
// file is renamed over path. A crash at any point leaves either the old
// complete snapshot or the new one — never a torn file on the restore
// path.
func (s *Store) WriteSnapshotFile(path string) error {
	return writeFileAtomic(path, s.WriteSnapshot)
}

// writeFileAtomic streams write into a same-directory temp file, syncs
// it, and renames it over path. On any failure the temp file is removed
// and path is left untouched.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := write(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("store: sync snapshot: %w", err))
	}
	if err := tmp.Close(); err != nil {
		return fail(fmt.Errorf("store: close snapshot: %w", err))
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: publish snapshot: %w", err)
	}
	return nil
}

// LoadSnapshot reads a snapshot into a fresh store; it fails without side
// effects on malformed input.
func LoadSnapshot(r io.Reader) (*Store, error) {
	var file snapshotFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&file); err != nil {
		return nil, fmt.Errorf("store: read snapshot: %w", err)
	}
	if file.Version != snapshotVersion {
		return nil, fmt.Errorf("store: snapshot version %d unsupported", file.Version)
	}
	s := New()
	for _, cs := range file.Collections {
		c := s.Collection(cs.Name)
		for _, field := range cs.Indexes {
			c.EnsureIndex(field)
		}
		// Snapshots sort docs lexicographically by ID ("events/10" <
		// "events/2") for byte determinism; secondary indexes must be
		// rebuilt in insertion order (numeric sequence) or FindBy would
		// return a restored user's history out of order.
		sort.Slice(cs.Docs, func(i, j int) bool { return docSeq(cs.Docs[i].ID) < docSeq(cs.Docs[j].ID) })
		c.mu.Lock()
		for _, d := range cs.Docs {
			doc := Document{ID: d.ID, Fields: make(map[string]string, len(d.Fields))}
			for k, v := range d.Fields {
				doc.Fields[k] = v
			}
			c.docs[d.ID] = doc
			for field, idx := range c.indexes {
				if v, ok := doc.Fields[field]; ok {
					idx[v] = append(idx[v], d.ID)
				}
			}
		}
		c.nextID = cs.NextID
		c.mu.Unlock()
	}
	return s, nil
}
