package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// wal.go is the append-only write-ahead log one shard carries next to
// its snapshot. Every insert is framed, checksummed, and sequence-
// numbered before it touches the in-memory collection: on restart the
// shard loads its snapshot (the compaction point) and replays every WAL
// record with a sequence number past the snapshot's applied_seq. A torn
// tail — a partially written final record — fails its CRC or length
// check and is truncated away rather than poisoning the replay.
//
// Durability scope: append writes through the OS page cache, so by
// default an accepted insert survives a *process* crash; an OS crash or
// power loss can lose the un-flushed tail. WALShard.SetSync upgrades to
// per-append fsync, extending the guarantee to power loss.
//
// Frame layout, little-endian:
//
//	[4 bytes: payload length][4 bytes: CRC-32 (IEEE) of payload][payload]
//
// The payload is one JSON walRecord. JSON keeps the format inspectable
// and matches the snapshot idiom; the frame makes truncation detectable.

// walMaxRecord bounds one record's payload; LRS events are tiny, so
// anything larger marks a corrupt length prefix.
const walMaxRecord = 1 << 20

// walRecord is one appended event.
type walRecord struct {
	Seq    uint64            `json:"seq"`
	Fields map[string]string `json:"fields"`
}

// wal is one shard's open write-ahead log file.
type wal struct {
	f    *os.File
	path string
}

// openWAL opens (creating if needed) the log at path, replays every
// intact record into fn, truncates any torn tail, and leaves the file
// positioned for appends. It returns the highest sequence number seen.
func openWAL(path string, fn func(walRecord)) (*wal, uint64, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("store: open wal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("store: read wal: %w", err)
	}
	records, intact := decodeWALRecords(data)
	var last uint64
	for _, rec := range records {
		if rec.Seq > last {
			last = rec.Seq
		}
		fn(rec)
	}
	if intact < int64(len(data)) {
		// Torn tail: drop the partial record so appends start clean.
		if err := f.Truncate(intact); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("store: truncate torn wal tail: %w", err)
		}
	}
	if _, err := f.Seek(intact, io.SeekStart); err != nil {
		f.Close()
		return nil, 0, err
	}
	return &wal{f: f, path: path}, last, nil
}

// decodeWALRecords parses every intact record from b, returning the
// records and the byte offset of the first torn or corrupt frame (equal
// to len(b) when the log is clean). It never panics on hostile input.
func decodeWALRecords(b []byte) ([]walRecord, int64) {
	var records []walRecord
	var off int64
	for {
		rest := b[off:]
		if len(rest) < 8 {
			return records, off
		}
		n := binary.LittleEndian.Uint32(rest[:4])
		if n == 0 || n > walMaxRecord || int(n) > len(rest)-8 {
			return records, off
		}
		sum := binary.LittleEndian.Uint32(rest[4:8])
		payload := rest[8 : 8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return records, off
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return records, off
		}
		records = append(records, rec)
		off += int64(8 + n)
	}
}

// append frames and writes one record.
func (w *wal) append(rec walRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode wal record: %w", err)
	}
	if len(payload) > walMaxRecord {
		return fmt.Errorf("store: wal record too large (%d bytes)", len(payload))
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("store: append wal record: %w", err)
	}
	return nil
}

// reset truncates the log to empty — called right after a snapshot is
// durably renamed into place, making the snapshot the new replay base.
// A crash between the rename and this truncate is safe: replay skips
// records at or below the snapshot's applied_seq.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("store: reset wal: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	return nil
}

// sync flushes the log to stable storage.
func (w *wal) sync() error { return w.f.Sync() }

// close releases the file handle.
func (w *wal) close() error { return w.f.Close() }
