package store

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoadSnapshot guards the restart path against corrupted or hostile
// snapshot files: load must reject or succeed cleanly, never panic, and a
// successful load must produce a usable store.
func FuzzLoadSnapshot(f *testing.F) {
	s := New()
	c := s.Collection("events")
	c.EnsureIndex("user")
	c.Insert(map[string]string{"user": "u", "item": "i"})
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"version":1,"collections":[]}`)
	f.Add(`{"version":1,"collections":[{"name":"x","docs":[{"id":"x/1"}]}]}`)
	f.Add(`{`)
	f.Add(``)

	f.Fuzz(func(t *testing.T, data string) {
		restored, err := LoadSnapshot(strings.NewReader(data))
		if err != nil {
			return
		}
		// A successful load must yield a store that survives use.
		for _, name := range restored.Names() {
			col := restored.Collection(name)
			col.Count()
			col.Insert(map[string]string{"probe": "1"})
			col.Scan(func(Document) bool { return true })
		}
	})
}
