package store

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRingOwnerDeterministicAndInRange(t *testing.T) {
	r1 := NewRing(5)
	r2 := NewRing(5)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("pseudonym-%d", i)
		o := r1.Owner(key)
		if o < 0 || o >= 5 {
			t.Fatalf("owner %d out of range", o)
		}
		if o != r2.Owner(key) {
			t.Fatalf("ring not deterministic for %q", key)
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	r := NewRing(4)
	hits := make([]int, 4)
	for i := 0; i < 4000; i++ {
		hits[r.Owner(fmt.Sprintf("user-%d", i))]++
	}
	for i, h := range hits {
		if h == 0 {
			t.Fatalf("shard %d received no keys: %v", i, hits)
		}
		if h > 3000 {
			t.Fatalf("shard %d hogs the ring: %v", i, hits)
		}
	}
}

func TestRingSingleShard(t *testing.T) {
	r := NewRing(1)
	if o := r.Owner("anything"); o != 0 {
		t.Fatalf("single-shard owner = %d", o)
	}
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	w, last, err := openWAL(path, func(walRecord) { t.Fatal("replay on empty WAL") })
	if err != nil {
		t.Fatal(err)
	}
	if last != 0 {
		t.Fatalf("empty WAL last seq = %d", last)
	}
	for i := 1; i <= 3; i++ {
		if err := w.append(walRecord{Seq: uint64(i), Fields: map[string]string{"user": fmt.Sprintf("u%d", i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	var replayed []walRecord
	w2, last, err := openWAL(path, func(rec walRecord) { replayed = append(replayed, rec) })
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	if last != 3 || len(replayed) != 3 {
		t.Fatalf("replay: last=%d records=%d", last, len(replayed))
	}
	if replayed[2].Fields["user"] != "u3" {
		t.Fatalf("replayed[2] = %+v", replayed[2])
	}
}

// TestWALTruncatesTornTail simulates a crash mid-append: a partial frame
// at the end of the file must be dropped on open and the WAL must accept
// fresh appends afterwards.
func TestWALTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	w, _, err := openWAL(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(walRecord{Seq: 1, Fields: map[string]string{"user": "alpha"}}); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, tail := range [][]byte{
		{0x09},                   // lone partial length prefix
		{0xff, 0xff, 0xff, 0x7f}, // length prefix promising more than the file holds
		append([]byte{5, 0, 0, 0, 1, 2, 3, 4}, []byte("abc")...), // full header, short payload
	} {
		if err := os.WriteFile(path, append(append([]byte{}, intact...), tail...), 0o644); err != nil {
			t.Fatal(err)
		}
		var got []walRecord
		w, last, err := openWAL(path, func(rec walRecord) { got = append(got, rec) })
		if err != nil {
			t.Fatalf("tail %v: %v", tail, err)
		}
		if last != 1 || len(got) != 1 || got[0].Fields["user"] != "alpha" {
			t.Fatalf("tail %v: replay last=%d got=%v", tail, last, got)
		}
		// The torn bytes are gone: a new append then a clean reopen sees
		// exactly two records.
		if err := w.append(walRecord{Seq: 2, Fields: map[string]string{"user": "beta"}}); err != nil {
			t.Fatal(err)
		}
		if err := w.close(); err != nil {
			t.Fatal(err)
		}
		var again []walRecord
		w2, _, err := openWAL(path, func(rec walRecord) { again = append(again, rec) })
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != 2 || again[1].Fields["user"] != "beta" {
			t.Fatalf("tail %v: post-truncate replay = %v", tail, again)
		}
		w2.close()
		if err := os.WriteFile(path, intact, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALRejectsCorruptRecord: a bit-flip inside a frame body fails the
// CRC and cuts the replay at that point rather than delivering garbage.
func TestWALCorruptRecordCutsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crc.wal")
	w, _, err := openWAL(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.append(walRecord{Seq: 1, Fields: map[string]string{"user": "a"}})
	w.append(walRecord{Seq: 2, Fields: map[string]string{"user": "b"}})
	w.close()

	b, _ := os.ReadFile(path)
	b[len(b)-2] ^= 0xff // flip a byte inside the last record's payload
	os.WriteFile(path, b, 0o644)

	var got []walRecord
	w2, last, err := openWAL(path, func(rec walRecord) { got = append(got, rec) })
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	if last != 1 || len(got) != 1 {
		t.Fatalf("corrupt record not cut: last=%d got=%v", last, got)
	}
}

func FuzzDecodeWALRecords(f *testing.F) {
	var buf bytes.Buffer
	{
		path := filepath.Join(f.TempDir(), "seed.wal")
		w, _, err := openWAL(path, nil)
		if err != nil {
			f.Fatal(err)
		}
		w.append(walRecord{Seq: 1, Fields: map[string]string{"user": "u", "item": "i"}})
		w.close()
		b, _ := os.ReadFile(path)
		buf.Write(b)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, n := decodeWALRecords(data)
		if n < 0 || n > int64(len(data)) {
			t.Fatalf("intact length %d out of [0, %d]", n, len(data))
		}
		// Re-decoding the intact prefix must reproduce the same records.
		again, n2 := decodeWALRecords(data[:n])
		if n2 != n || len(again) != len(recs) {
			t.Fatalf("prefix not stable: %d/%d records, %d/%d bytes", len(again), len(recs), n2, n)
		}
	})
}

func TestWALShardReopenReplaysInserts(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWALShard(dir, 0, "user")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Insert(map[string]string{"user": "enc:u1", "item": fmt.Sprintf("i%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil { // no Compact: recovery comes purely from the WAL
		t.Fatal(err)
	}

	s2, err := OpenWALShard(dir, 0, "user")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Count() != 5 {
		t.Fatalf("replayed count = %d", s2.Count())
	}
	docs := s2.FindBy("user", "enc:u1")
	if len(docs) != 5 || docs[0].Fields["item"] != "i0" || docs[4].Fields["item"] != "i4" {
		t.Fatalf("replayed docs out of order: %v", docs)
	}
}

func TestWALShardCompactThenReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWALShard(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Insert(map[string]string{"user": "a", "item": "1"})
	s.Insert(map[string]string{"user": "b", "item": "2"})
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(shardWALPath(dir, 1)); err != nil || fi.Size() != 0 {
		t.Fatalf("WAL not truncated after compact: %v %v", fi, err)
	}
	s.Insert(map[string]string{"user": "c", "item": "3"}) // post-compaction tail lives in the WAL
	s.Close()

	s2, err := OpenWALShard(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Count() != 3 {
		t.Fatalf("count after snapshot+tail replay = %d", s2.Count())
	}
}

// TestWALShardCrashBetweenSnapshotAndTruncate covers the compaction crash
// window: the snapshot has been renamed into place (applied_seq = N) but
// the WAL still holds records ≤ N. Replay must skip the stale records and
// apply only newer ones — no double-application.
func TestWALShardCrashBetweenSnapshotAndTruncate(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWALShard(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Insert(map[string]string{"user": "a", "item": "1"})
	s.Insert(map[string]string{"user": "a", "item": "2"})
	if err := s.Compact(); err != nil { // snapshot at applied_seq=2, WAL empty
		t.Fatal(err)
	}
	s.Close()

	// Recreate the pre-truncate WAL: stale records 1..2 plus a new 3.
	w, _, err := openWAL(shardWALPath(dir, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	w.append(walRecord{Seq: 1, Fields: map[string]string{"user": "a", "item": "1"}})
	w.append(walRecord{Seq: 2, Fields: map[string]string{"user": "a", "item": "2"}})
	w.append(walRecord{Seq: 3, Fields: map[string]string{"user": "a", "item": "3"}})
	w.close()

	s2, err := OpenWALShard(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Count() != 3 {
		t.Fatalf("count = %d: stale WAL records were re-applied", s2.Count())
	}
	items := map[string]int{}
	s2.ScanOrdered(func(d Document) bool { items[d.Fields["item"]]++; return true })
	for it, n := range items {
		if n != 1 {
			t.Fatalf("item %s applied %d times", it, n)
		}
	}
}

// TestAtomicSnapshotSurvivesFailedRewrite is the torn-write regression
// (satellite: atomic snapshot writes): a failing rewrite leaves the
// previous snapshot byte-identical and no temp litter behind.
func TestAtomicSnapshotSurvivesFailedRewrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	st := New()
	st.Collection("events").Insert(map[string]string{"user": "u"})
	if err := st.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	if err := writeFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("partial garbage that must never become the snapshot"))
		return fmt.Errorf("disk full")
	}); err == nil {
		t.Fatal("failed write reported success")
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("snapshot mutated by failed rewrite:\nbefore %s\nafter  %s", before, after)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp litter left behind: %s", e.Name())
		}
	}
}

// TestWALShardRejectsTornSnapshot: a truncated snapshot file fails the
// open cleanly instead of silently loading a partial store.
func TestWALShardRejectsTornSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWALShard(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Insert(map[string]string{"user": "a", "item": "1"})
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	snap := shardSnapPath(dir, 0)
	b, _ := os.ReadFile(snap)
	os.WriteFile(snap, b[:len(b)/2], 0o644)
	if _, err := OpenWALShard(dir, 0); err == nil {
		t.Fatal("torn snapshot accepted")
	}
}

func TestShardedLogRoutesUserToOneShard(t *testing.T) {
	l, err := OpenShardedLog(ShardedConfig{Shards: 4, IndexFields: []string{"user"}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	owners := map[string]int{}
	for u := 0; u < 20; u++ {
		user := fmt.Sprintf("enc:user-%d", u)
		for i := 0; i < 5; i++ {
			shard, err := l.Insert(map[string]string{"user": user, "item": fmt.Sprintf("i%d", i)})
			if err != nil {
				t.Fatal(err)
			}
			if prev, ok := owners[user]; ok && prev != shard {
				t.Fatalf("user %s split across shards %d and %d", user, prev, shard)
			}
			owners[user] = shard
			if shard != l.Owner(user) {
				t.Fatalf("insert shard %d != Owner %d", shard, l.Owner(user))
			}
		}
	}
	for user, shard := range owners {
		docs := l.FindBy("user", user)
		if len(docs) != 5 {
			t.Fatalf("user %s: %d docs", user, len(docs))
		}
		if got := l.shards[shard].FindBy("user", user); len(got) != 5 {
			t.Fatalf("owner shard %d holds %d docs for %s", shard, len(got), user)
		}
	}
	if l.Count() != 100 {
		t.Fatalf("total count = %d", l.Count())
	}
}

func TestShardedLogScanOrderedPreservesPerUserOrder(t *testing.T) {
	l, err := OpenShardedLog(ShardedConfig{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 30; i++ {
		l.Insert(map[string]string{"user": fmt.Sprintf("u%d", i%7), "item": fmt.Sprintf("i%02d", i)})
	}
	perUser := map[string][]string{}
	l.ScanOrdered(func(d Document) bool {
		perUser[d.Fields["user"]] = append(perUser[d.Fields["user"]], d.Fields["item"])
		return true
	})
	for u, items := range perUser {
		for i := 1; i < len(items); i++ {
			if items[i-1] >= items[i] {
				t.Fatalf("user %s order broken: %v", u, items)
			}
		}
	}
}

func TestShardedLogSnapshotRestoreRoundTrip(t *testing.T) {
	for _, restoreShards := range []int{1, 3, 5} {
		l, err := OpenShardedLog(ShardedConfig{Shards: 3, IndexFields: []string{"user"}})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			l.Insert(map[string]string{"user": fmt.Sprintf("u%d", i%8), "item": fmt.Sprintf("i%02d", i)})
		}
		var buf bytes.Buffer
		if err := l.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		l.Close()

		l2, err := OpenShardedLog(ShardedConfig{Shards: restoreShards, IndexFields: []string{"user"}})
		if err != nil {
			t.Fatal(err)
		}
		if err := l2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("restore into %d shards: %v", restoreShards, err)
		}
		if l2.Count() != 40 {
			t.Fatalf("restore into %d shards: count %d", restoreShards, l2.Count())
		}
		for u := 0; u < 8; u++ {
			user := fmt.Sprintf("u%d", u)
			docs := l2.FindBy("user", user)
			if len(docs) != 5 {
				t.Fatalf("restore into %d shards: user %s has %d docs", restoreShards, user, len(docs))
			}
			for i := 1; i < len(docs); i++ {
				if docs[i-1].Fields["item"] >= docs[i].Fields["item"] {
					t.Fatalf("restore into %d shards: user %s order broken", restoreShards, user)
				}
			}
		}
		l2.Close()
	}
}

func TestShardedLogRestoresV1Snapshot(t *testing.T) {
	flat := New()
	col := flat.Collection(eventsCollection)
	for i := 0; i < 12; i++ {
		col.Insert(map[string]string{"user": fmt.Sprintf("u%d", i%3), "item": fmt.Sprintf("i%02d", i)})
	}
	var buf bytes.Buffer
	if err := flat.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	l, err := OpenShardedLog(ShardedConfig{Shards: 4, IndexFields: []string{"user"}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Restore(&buf); err != nil {
		t.Fatalf("v1 restore: %v", err)
	}
	if l.Count() != 12 {
		t.Fatalf("v1 restore count = %d", l.Count())
	}
	if docs := l.FindBy("user", "u0"); len(docs) != 4 {
		t.Fatalf("v1 restore: u0 has %d docs", len(docs))
	}
}

func TestShardedLogRestoreRejectsNonEmpty(t *testing.T) {
	l, _ := OpenShardedLog(ShardedConfig{Shards: 2})
	defer l.Close()
	l.Insert(map[string]string{"user": "u"})
	var buf bytes.Buffer
	l.WriteSnapshot(&buf)
	if err := l.Restore(&buf); err == nil {
		t.Fatal("restore into non-empty log accepted")
	}
}

func TestShardedLogDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := ShardedConfig{Shards: 3, Dir: dir, IndexFields: []string{"user"}}
	l, err := OpenShardedLog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Durable() {
		t.Fatal("WAL-backed log not durable")
	}
	for i := 0; i < 25; i++ {
		if _, err := l.Insert(map[string]string{"user": fmt.Sprintf("u%d", i%5), "item": fmt.Sprintf("i%02d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil { // crash-style: no compaction
		t.Fatal(err)
	}

	l2, err := OpenShardedLog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Count() != 25 {
		t.Fatalf("replayed count = %d", l2.Count())
	}
	for u := 0; u < 5; u++ {
		if docs := l2.FindBy("user", fmt.Sprintf("u%d", u)); len(docs) != 5 {
			t.Fatalf("u%d has %d docs after replay", u, len(docs))
		}
	}
}

func TestShardedLogReplaceShard(t *testing.T) {
	l, _ := OpenShardedLog(ShardedConfig{Shards: 2, IndexFields: []string{"user"}})
	defer l.Close()
	shard, _ := l.Insert(map[string]string{"user": "u1", "item": "old"})
	if err := l.ReplaceShard(shard, []map[string]string{{"user": "u1", "item": "new"}}); err != nil {
		t.Fatal(err)
	}
	docs := l.FindBy("user", "u1")
	if len(docs) != 1 || docs[0].Fields["item"] != "new" {
		t.Fatalf("replace result = %v", docs)
	}
}

// TestWALShardSyncModeRoundTrip: with per-append fsync on, inserts are
// accepted, flushed, and replayed on reopen exactly like the default
// (page-cache) mode.
func TestWALShardSyncModeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWALShard(dir, 0, "user")
	if err != nil {
		t.Fatal(err)
	}
	s.SetSync(true)
	for i := 0; i < 8; i++ {
		if err := s.Insert(map[string]string{"user": "u", "item": fmt.Sprintf("i%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenWALShard(dir, 0, "user")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Count() != 8 {
		t.Fatalf("replayed %d events, want 8", s2.Count())
	}
	if docs := s2.FindBy("user", "u"); len(docs) != 8 || docs[0].Fields["item"] != "i0" {
		t.Fatalf("replayed lookup wrong: %d docs", len(docs))
	}
}

// TestShardedLogSyncConfig: ShardedConfig.Sync plumbs through to every
// shard without changing observable behavior.
func TestShardedLogSyncConfig(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenShardedLog(ShardedConfig{Shards: 2, Dir: dir, Sync: true, IndexFields: []string{"user"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Insert(map[string]string{"user": fmt.Sprintf("u%d", i%3), "item": fmt.Sprintf("i%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenShardedLog(ShardedConfig{Shards: 2, Dir: dir, IndexFields: []string{"user"}})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Count() != 10 {
		t.Fatalf("replayed %d events, want 10", l2.Count())
	}
}
