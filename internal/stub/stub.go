// Package stub provides the static-payload stand-in for the LRS used by
// the paper's micro-benchmarks (§7.1): "When testing PProx in isolation
// from Harness, we use a stub service with the nginx high-performance HTTP
// server to serve a static payload of the same size as Harness
// recommendations lists."
package stub

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"pprox/internal/message"
	"pprox/internal/metrics"
)

// Server is the static stub LRS. It accepts the same REST API as a real
// LRS: POST /events for feedback (acknowledged and discarded) and POST
// /queries for recommendations (a constant list, same size as a Harness
// response).
type Server struct {
	// Delay adds an artificial service time per request, used to model
	// the 1–2 ms the paper measures for direct injector→nginx requests.
	Delay time.Duration

	items    []string
	posts    atomic.Uint64
	gets     atomic.Uint64
	respBody []byte

	// requests holds the optional cached service-time histograms
	// (RegisterMetrics), keyed by API path with "other" bounding the
	// label cardinality.
	requests atomic.Pointer[map[string]*metrics.Histogram]
}

// New creates a stub serving a static list of n generated item
// identifiers (n is capped at message.MaxRecommendations).
func New(n int) (*Server, error) {
	if n > message.MaxRecommendations {
		n = message.MaxRecommendations
	}
	items := make([]string, n)
	for i := range items {
		items[i] = fmt.Sprintf("stub-item-%04d", i)
	}
	return NewWithItems(items)
}

// NewWithItems creates a stub serving the given static list — e.g.
// identifiers pre-pseudonymized under the IA layer's permanent key, so
// that a full-crypto PProx deployment in front of the stub exercises the
// same de-pseudonymization path as with a real LRS.
func NewWithItems(items []string) (*Server, error) {
	if len(items) > message.MaxRecommendations {
		items = items[:message.MaxRecommendations]
	}
	items = append([]string(nil), items...)
	body, err := message.Marshal(message.LRSGetResponse{Items: items})
	if err != nil {
		return nil, fmt.Errorf("stub: prebuild response: %w", err)
	}
	return &Server{items: items, respBody: body}, nil
}

// Items returns the static recommendation list the stub serves.
func (s *Server) Items() []string {
	return append([]string(nil), s.items...)
}

// Counts returns how many post and get requests were served.
func (s *Server) Counts() (posts, gets uint64) {
	return s.posts.Load(), s.gets.Load()
}

// RegisterMetrics exposes the stub's request counters and a service-time
// histogram. node names the instance for the labeled family; empty
// defaults to "stub".
func (s *Server) RegisterMetrics(r *metrics.Registry, node string) {
	if node == "" {
		node = "stub"
	}
	r.CounterFunc("pprox_stub_posts_total", "Feedback insertions acknowledged by the stub LRS.", func() float64 {
		return float64(s.posts.Load())
	})
	r.CounterFunc("pprox_stub_gets_total", "Recommendation queries served by the stub LRS.", func() float64 {
		return float64(s.gets.Load())
	})
	hv := r.HistogramVec("pprox_lrs_request_seconds",
		"LRS request service time.", nil, "node", "path")
	children := map[string]*metrics.Histogram{
		message.EventsPath:  hv.With(node, message.EventsPath),
		message.QueriesPath: hv.With(node, message.QueriesPath),
		"other":             hv.With(node, "other"),
	}
	s.requests.Store(&children)
}

// Health reports the stub's (always-ready) provisioning state.
func (s *Server) Health() metrics.Health {
	return metrics.Health{OK: true, Checks: map[string]string{"static_items": fmt.Sprintf("%d", len(s.items))}}
}

// ServeHTTP implements the LRS REST API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if m := s.requests.Load(); m != nil {
		h, ok := (*m)[r.URL.Path]
		if !ok {
			h = (*m)["other"]
		}
		start := time.Now()
		defer h.ObserveSince(start)
	}
	if s.Delay > 0 {
		time.Sleep(s.Delay)
	}
	switch {
	case r.Method == http.MethodPost && r.URL.Path == message.EventsPath:
		s.posts.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status":"ok"}`)
	case r.Method == http.MethodPost && r.URL.Path == message.QueriesPath:
		s.gets.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write(s.respBody)
	case r.Method == http.MethodGet && r.URL.Path == message.HealthPath:
		fmt.Fprint(w, "ok")
	default:
		http.NotFound(w, r)
	}
}

var _ http.Handler = (*Server)(nil)
