package stub

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pprox/internal/message"
)

func newServer(t *testing.T, n int) *Server {
	t.Helper()
	s, err := New(n)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestStubServesStaticRecommendations(t *testing.T) {
	s := newServer(t, 20)
	req := httptest.NewRequest(http.MethodPost, message.QueriesPath, strings.NewReader(`{"user":"p-1"}`))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp message.LRSGetResponse
	if err := message.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 20 {
		t.Errorf("items = %d, want 20", len(resp.Items))
	}
	if _, gets := s.Counts(); gets != 1 {
		t.Errorf("gets = %d", gets)
	}
}

func TestStubAcknowledgesEvents(t *testing.T) {
	s := newServer(t, 20)
	req := httptest.NewRequest(http.MethodPost, message.EventsPath, strings.NewReader(`{"user":"p","item":"q"}`))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body, _ := io.ReadAll(rec.Body)
	if !strings.Contains(string(body), "ok") {
		t.Errorf("body = %s", body)
	}
	if posts, _ := s.Counts(); posts != 1 {
		t.Errorf("posts = %d", posts)
	}
}

func TestStubHealth(t *testing.T) {
	s := newServer(t, 1)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, message.HealthPath, nil))
	if rec.Code != http.StatusOK {
		t.Errorf("health status = %d", rec.Code)
	}
}

func TestStubUnknownPath(t *testing.T) {
	s := newServer(t, 1)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("status = %d, want 404", rec.Code)
	}
}

func TestStubCapsListSize(t *testing.T) {
	s := newServer(t, 1000)
	if got := len(s.Items()); got != message.MaxRecommendations {
		t.Errorf("items = %d, want cap %d", got, message.MaxRecommendations)
	}
}

func TestStubDelay(t *testing.T) {
	s := newServer(t, 1)
	s.Delay = 20 * time.Millisecond
	start := time.Now()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, message.QueriesPath, strings.NewReader("{}")))
	if elapsed := time.Since(start); elapsed < s.Delay {
		t.Errorf("request served in %v, want ≥ %v", elapsed, s.Delay)
	}
}
