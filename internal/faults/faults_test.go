package faults

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func okHandler(served *atomic.Int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if served != nil {
			served.Add(1)
		}
		io.WriteString(w, "ok")
	})
}

func TestErrorFaultCountBudget(t *testing.T) {
	var served atomic.Int64
	inj := NewInjector(1, Rule{Kind: KindError, Status: 503, Count: 2})
	h := inj.Middleware(okHandler(&served))

	for i := 0; i < 5; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/queries", nil))
		wantStatus := http.StatusOK
		if i < 2 {
			wantStatus = http.StatusServiceUnavailable
		}
		if rec.Code != wantStatus {
			t.Errorf("request %d: status %d, want %d", i, rec.Code, wantStatus)
		}
	}
	if served.Load() != 3 {
		t.Errorf("handler served %d, want 3", served.Load())
	}
	if inj.Fired(KindError) != 2 {
		t.Errorf("fired = %d, want 2", inj.Fired(KindError))
	}
}

func TestPathSelector(t *testing.T) {
	inj := NewInjector(1, Rule{Kind: KindError, Path: "/events"})
	h := inj.Middleware(okHandler(nil))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/queries", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("/queries hit by /events rule (status %d)", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/events", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("/events not hit: status %d", rec.Code)
	}
}

func TestLatencyFault(t *testing.T) {
	inj := NewInjector(1, Rule{Kind: KindLatency, Delay: 50 * time.Millisecond})
	h := inj.Middleware(okHandler(nil))
	start := time.Now()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Errorf("latency fault added only %v", d)
	}
	if rec.Code != http.StatusOK || rec.Body.String() != "ok" {
		t.Errorf("latency fault corrupted the response: %d %q", rec.Code, rec.Body.String())
	}
}

func TestHangReleasedByClientDeparture(t *testing.T) {
	inj := NewInjector(1, Rule{Kind: KindHang})
	h := inj.Middleware(okHandler(nil))

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest(http.MethodGet, "/", nil).WithContext(ctx)

	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() {
			if recover() != http.ErrAbortHandler {
				t.Error("hang did not abort the handler")
			}
		}()
		h.ServeHTTP(httptest.NewRecorder(), req)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("hang not released by context cancellation")
	}
}

func TestHangReleasedByClose(t *testing.T) {
	inj := NewInjector(1, Rule{Kind: KindHang})
	h := inj.Middleware(okHandler(nil))
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() { recover() }()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	}()
	time.Sleep(10 * time.Millisecond)
	inj.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("hang not released by Close")
	}
}

func TestDropAbortsConnectionOverRealServer(t *testing.T) {
	inj := NewInjector(1, Rule{Kind: KindDrop, Count: 1})
	srv := httptest.NewServer(inj.Middleware(okHandler(nil)))
	defer srv.Close()

	if _, err := srv.Client().Get(srv.URL); err == nil {
		t.Error("dropped connection produced a response")
	}
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatalf("second request after drop budget: %v", err)
	}
	resp.Body.Close()
}

func TestAfterRunsHandlerThenFails(t *testing.T) {
	var served atomic.Int64
	inj := NewInjector(1, Rule{Kind: KindError, Status: 502, Count: 1, After: true})
	h := inj.Middleware(okHandler(&served))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/events", nil))
	if rec.Code != http.StatusBadGateway {
		t.Errorf("status %d, want 502", rec.Code)
	}
	if served.Load() != 1 {
		t.Errorf("inner handler ran %d times, want 1 (After must process first)", served.Load())
	}
}

func TestProbabilisticRuleIsSeededDeterministic(t *testing.T) {
	run := func() []int {
		inj := NewInjector(42, Rule{Kind: KindError, Probability: 0.5})
		h := inj.Middleware(okHandler(nil))
		var codes []int
		for i := 0; i < 64; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
			codes = append(codes, rec.Code)
		}
		return codes
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %d vs %d", i, a[i], b[i])
		}
		if a[i] != http.StatusOK {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Errorf("p=0.5 rule fired %d/%d times", fired, len(a))
	}
}

func TestNilInjectorPassesThrough(t *testing.T) {
	var inj *Injector
	h := inj.Middleware(okHandler(nil))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("status %d", rec.Code)
	}
}

func TestParseSpec(t *testing.T) {
	rules, err := ParseSpec("error:status=503:count=10, latency:delay=200ms:p=0.1, hang:path=/queries, drop:after=true")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("parsed %d rules, want 4", len(rules))
	}
	if rules[0].Kind != KindError || rules[0].Status != 503 || rules[0].Count != 10 {
		t.Errorf("rule 0: %+v", rules[0])
	}
	if rules[1].Kind != KindLatency || rules[1].Delay != 200*time.Millisecond || rules[1].Probability != 0.1 {
		t.Errorf("rule 1: %+v", rules[1])
	}
	if rules[2].Kind != KindHang || rules[2].Path != "/queries" {
		t.Errorf("rule 2: %+v", rules[2])
	}
	if rules[3].Kind != KindDrop || !rules[3].After {
		t.Errorf("rule 3: %+v", rules[3])
	}

	for _, bad := range []string{"explode", "error:status", "error:status=abc", "latency:wat=1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
	if rules, err := ParseSpec(""); err != nil || len(rules) != 0 {
		t.Errorf("empty spec: %v, %v", rules, err)
	}
	for _, k := range []Kind{KindError, KindLatency, KindHang, KindDrop} {
		if strings.Contains(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
}
