// Package faults is the fault-injection harness for the chaos experiments:
// an HTTP middleware that makes a node misbehave on demand — returning
// errors, adding latency, hanging until the caller gives up, or dropping
// the connection without a response. Probabilistic rules draw from a
// seeded deterministic source, so a chaos run replays bit-identically.
//
// The injector is wired per node through cluster.Spec (in-process testbed)
// and through the -inject-fault flag of the cmd/ binaries (TCP
// deployments), which is how the resilience substrate's retries, breakers
// and balancer ejection are exercised end to end.
package faults

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind enumerates the injectable fault behaviours.
type Kind int

// Fault kinds.
const (
	// KindError responds with Rule.Status without running the handler
	// (or after it, with After).
	KindError Kind = iota + 1
	// KindLatency delays the request by Rule.Delay, then serves it.
	KindLatency
	// KindHang never responds: the request blocks until the client
	// departs or the injector is closed — a wedged-process model.
	KindHang
	// KindDrop aborts the connection without writing a response — a
	// crashed-process / cut-cable model.
	KindDrop
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindLatency:
		return "latency"
	case KindHang:
		return "hang"
	case KindDrop:
		return "drop"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Rule arms one fault. The zero value of every selector matches
// everything, so Rule{Kind: KindDrop} drops every request.
type Rule struct {
	// Kind selects the behaviour.
	Kind Kind
	// Path restricts the rule to one URL path ("" = any).
	Path string
	// Status is the response code for KindError (default 500).
	Status int
	// Delay is the added latency for KindLatency.
	Delay time.Duration
	// Probability fires the rule on each matching request with this
	// chance; 0 means always (a probability-1 deterministic rule).
	Probability float64
	// Count limits how many times the rule fires (0 = unlimited); used
	// for "fail the first N requests" scenarios.
	Count int
	// After runs the inner handler first and then injects the fault in
	// place of its response. This is how a "request processed but reply
	// lost" failure is modelled — the scenario idempotency keys exist
	// for.
	After bool
}

// Injector decides per request whether a fault fires. It is safe for
// concurrent use and may be re-armed while serving.
type Injector struct {
	mu    sync.Mutex
	rules []*armedRule
	rng   *rand.Rand
	stop  chan struct{}
	once  sync.Once

	fired map[Kind]uint64
}

type armedRule struct {
	Rule
	fired int
}

// NewInjector creates an injector with deterministic randomness drawn
// from seed, armed with the given rules.
func NewInjector(seed uint64, rules ...Rule) *Injector {
	inj := &Injector{
		rng:   rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		stop:  make(chan struct{}),
		fired: make(map[Kind]uint64),
	}
	for _, r := range rules {
		inj.Arm(r)
	}
	return inj
}

// Arm adds a rule.
func (inj *Injector) Arm(r Rule) {
	if r.Kind == KindError && r.Status == 0 {
		r.Status = http.StatusInternalServerError
	}
	inj.mu.Lock()
	inj.rules = append(inj.rules, &armedRule{Rule: r})
	inj.mu.Unlock()
}

// Disarm removes every rule; in-flight hangs keep hanging until Close.
func (inj *Injector) Disarm() {
	inj.mu.Lock()
	inj.rules = nil
	inj.mu.Unlock()
}

// Close releases hanging requests and disarms the injector.
func (inj *Injector) Close() {
	inj.once.Do(func() { close(inj.stop) })
	inj.Disarm()
}

// Fired returns how many times faults of the kind have fired.
func (inj *Injector) Fired(k Kind) uint64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.fired[k]
}

// match picks the first armed rule that fires for the request, consuming
// one firing from its budget.
func (inj *Injector) match(r *http.Request) *Rule {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for _, ar := range inj.rules {
		if ar.Path != "" && ar.Path != r.URL.Path {
			continue
		}
		if ar.Count > 0 && ar.fired >= ar.Count {
			continue
		}
		if ar.Probability > 0 && inj.rng.Float64() >= ar.Probability {
			continue
		}
		ar.fired++
		inj.fired[ar.Kind]++
		rule := ar.Rule
		return &rule
	}
	return nil
}

// Middleware wraps a handler with the injector. A nil injector returns
// the handler unchanged, so call sites can wire it unconditionally.
func (inj *Injector) Middleware(next http.Handler) http.Handler {
	if inj == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rule := inj.match(r)
		if rule == nil {
			next.ServeHTTP(w, r)
			return
		}
		if rule.After {
			// Serve for real, then discard the response and fail:
			// the upstream effect happened but the caller never
			// learns — the double-count scenario.
			rec := &discardResponse{header: make(http.Header)}
			next.ServeHTTP(rec, r)
		}
		switch rule.Kind {
		case KindError:
			http.Error(w, "injected fault", rule.Status)
		case KindLatency:
			select {
			case <-time.After(rule.Delay):
			case <-r.Context().Done():
			case <-inj.stop:
			}
			if !rule.After {
				next.ServeHTTP(w, r)
			}
		case KindHang:
			select {
			case <-r.Context().Done():
			case <-inj.stop:
			}
			panic(http.ErrAbortHandler)
		case KindDrop:
			panic(http.ErrAbortHandler)
		}
	})
}

// discardResponse swallows the inner handler's response when a fault is
// injected after processing.
type discardResponse struct {
	header http.Header
	body   bytes.Buffer
}

func (d *discardResponse) Header() http.Header         { return d.header }
func (d *discardResponse) Write(p []byte) (int, error) { return d.body.Write(p) }
func (d *discardResponse) WriteHeader(int)             {}

// ParseSpec parses the -inject-fault flag syntax: a comma-separated list
// of faults, each "kind[:key=value...]" with keys path, status, delay,
// p (probability), count, after. Examples:
//
//	error:status=503:count=10
//	latency:delay=200ms:p=0.1
//	hang:path=/queries
//	drop:count=1:after=true
func ParseSpec(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		var r Rule
		switch fields[0] {
		case "error":
			r.Kind = KindError
		case "latency":
			r.Kind = KindLatency
		case "hang":
			r.Kind = KindHang
		case "drop":
			r.Kind = KindDrop
		default:
			return nil, fmt.Errorf("faults: unknown kind %q", fields[0])
		}
		for _, kv := range fields[1:] {
			key, value, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("faults: malformed option %q", kv)
			}
			var err error
			switch key {
			case "path":
				r.Path = value
			case "status":
				r.Status, err = strconv.Atoi(value)
			case "delay":
				r.Delay, err = time.ParseDuration(value)
			case "p":
				r.Probability, err = strconv.ParseFloat(value, 64)
			case "count":
				r.Count, err = strconv.Atoi(value)
			case "after":
				r.After, err = strconv.ParseBool(value)
			default:
				err = fmt.Errorf("unknown option %q", key)
			}
			if err != nil {
				return nil, fmt.Errorf("faults: option %q: %v", kv, err)
			}
		}
		rules = append(rules, r)
	}
	return rules, nil
}
