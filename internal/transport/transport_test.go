package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestListenDialRoundTrip(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	l, err := n.Listen("svc-a")
	if err != nil {
		t.Fatal(err)
	}

	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(c, buf); err != nil {
			return
		}
		c.Write(append([]byte("re:"), buf...))
	}()

	c, err := n.DialContext(context.Background(), "mem", "svc-a")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "re:hello" {
		t.Errorf("echo = %q", got)
	}
}

func TestDialUnknownAddressRefused(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	_, err := n.DialContext(context.Background(), "mem", "nobody")
	if !errors.Is(err, ErrConnectionRefused) {
		t.Fatalf("err=%v, want ErrConnectionRefused", err)
	}
}

func TestDuplicateListenRejected(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	if _, err := n.Listen("svc"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("svc"); !errors.Is(err, ErrAddressInUse) {
		t.Fatalf("err=%v, want ErrAddressInUse", err)
	}
}

func TestListenerCloseUnbindsAddress(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	l, err := n.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Address is free again.
	if _, err := n.Listen("svc"); err != nil {
		t.Fatalf("re-listen after close: %v", err)
	}
	// Accept on the closed listener fails.
	if _, err := l.Accept(); !errors.Is(err, ErrNetworkClosed) {
		t.Fatalf("accept after close: err=%v", err)
	}
}

func TestDialContextCancellation(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	l, err := n.Listen("slow")
	if err != nil {
		t.Fatal(err)
	}
	// Fill the accept backlog without accepting.
	for i := 0; i < cap(l.(*listener).pending); i++ {
		if _, err := n.DialContext(context.Background(), "mem", "slow"); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := n.DialContext(ctx, "mem", "slow"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v, want deadline exceeded", err)
	}
}

func TestNetworkCloseRefusesEverything(t *testing.T) {
	n := NewNetwork()
	if _, err := n.Listen("a"); err != nil {
		t.Fatal(err)
	}
	n.Close()
	if _, err := n.Listen("b"); !errors.Is(err, ErrNetworkClosed) {
		t.Fatalf("Listen after Close: err=%v", err)
	}
	if _, err := n.DialContext(context.Background(), "mem", "a"); !errors.Is(err, ErrNetworkClosed) {
		t.Fatalf("Dial after Close: err=%v", err)
	}
	// Double close is fine.
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPOverMemnet(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	l, err := n.Listen("web")
	if err != nil {
		t.Fatal(err)
	}
	shutdown := Serve(l, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "hi %s", r.URL.Path)
	}))
	defer shutdown()

	client := HTTPClient(n, 5*time.Second)
	resp, err := client.Get("http://web/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "hi /x" {
		t.Errorf("body = %q", body)
	}
}

func TestHTTPOverMemnetConcurrent(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	l, err := n.Listen("web")
	if err != nil {
		t.Fatal(err)
	}
	shutdown := Serve(l, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer shutdown()

	client := HTTPClient(n, 5*time.Second)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Get("http://web/")
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("request failed: %v", err)
	}
}

func TestServeShutdownIdempotentUse(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	l, err := n.Listen("web")
	if err != nil {
		t.Fatal(err)
	}
	shutdown := Serve(l, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// After shutdown the address no longer accepts connections.
	client := HTTPClient(n, 500*time.Millisecond)
	if _, err := client.Get("http://web/"); err == nil {
		t.Error("request succeeded after shutdown")
	}
}

// Regression: listener.Close never drained the pending channel, so a
// server-side pipe conn queued between Dial and Accept was simply leaked —
// its dialer's reads would block until the client's own timeout. Close
// must close the queued conns so the peer fails immediately.
func TestListenerCloseDrainsPendingConns(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	l, err := n.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}

	// Queue conns that nobody ever Accepts.
	conns := make([]net.Conn, 0, 4)
	for i := 0; i < 4; i++ {
		c, err := n.DialContext(context.Background(), "mem", "svc")
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}

	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Every queued conn's client end must observe the close promptly: a
	// read fails instead of hanging. Pre-fix this read blocked forever
	// (guarded here by the deadline, which net.Pipe supports).
	for i, c := range conns {
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := c.Read(make([]byte, 1)); err == nil {
			t.Fatalf("conn %d: read succeeded on drained conn", i)
		} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
			t.Fatalf("conn %d: read timed out; pending conn was leaked, not closed", i)
		}
		c.Close()
	}
}

// Dialing into a listener that is concurrently closing must never strand
// the client: either the dial is refused or the returned conn's peer is
// closed so reads fail fast.
func TestDialIntoClosingListener(t *testing.T) {
	for round := 0; round < 50; round++ {
		n := NewNetwork()
		l, err := n.Listen("svc")
		if err != nil {
			t.Fatal(err)
		}
		start := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			<-start
			l.Close()
		}()
		var conn net.Conn
		var dialErr error
		go func() {
			defer wg.Done()
			<-start
			conn, dialErr = n.DialContext(context.Background(), "mem", "svc")
		}()
		close(start)
		wg.Wait()
		if dialErr != nil {
			if !errors.Is(dialErr, ErrConnectionRefused) {
				t.Fatalf("round %d: err=%v, want ErrConnectionRefused", round, dialErr)
			}
		} else {
			conn.SetReadDeadline(time.Now().Add(2 * time.Second))
			if _, err := conn.Read(make([]byte, 1)); err == nil {
				t.Fatalf("round %d: read succeeded on conn into closed listener", round)
			} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
				t.Fatalf("round %d: dial into closed listener returned a stranded conn", round)
			}
			conn.Close()
		}
		n.Close()
	}
}
