// Package transport provides the network substrate the PProx components
// run on: either real TCP or an in-memory network (memnet) with the same
// net.Listener / dialer contract. The in-memory network lets the full
// multi-node deployment of the paper's evaluation — injectors, proxy
// layers, load balancers, and the LRS — run inside one process with
// deterministic addressing, while examples and the cmd/ binaries use TCP.
package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// Errors reported by the in-memory network.
var (
	// ErrAddressInUse reports a duplicate Listen on one address.
	ErrAddressInUse = errors.New("transport: address already in use")

	// ErrConnectionRefused reports a Dial to an address nobody listens on.
	ErrConnectionRefused = errors.New("transport: connection refused")

	// ErrNetworkClosed reports use of a closed network or listener.
	ErrNetworkClosed = errors.New("transport: closed")
)

// Dialer opens client connections; both the memnet Network and real TCP
// (via net.Dialer) satisfy it.
type Dialer interface {
	DialContext(ctx context.Context, network, addr string) (net.Conn, error)
}

// Network is an in-memory network: a registry of listeners addressed by
// opaque strings (e.g. "ua-1", "lrs-0"). The zero value is not usable; use
// NewNetwork.
type Network struct {
	mu        sync.Mutex
	listeners map[string]*listener
	closed    bool
}

// NewNetwork creates an empty in-memory network.
func NewNetwork() *Network {
	return &Network{listeners: make(map[string]*listener)}
}

// Listen binds an address on the in-memory network.
func (n *Network) Listen(addr string) (net.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrNetworkClosed
	}
	if _, dup := n.listeners[addr]; dup {
		return nil, fmt.Errorf("%w: %s", ErrAddressInUse, addr)
	}
	l := &listener{
		addr:    memAddr(addr),
		pending: make(chan net.Conn, 16),
		done:    make(chan struct{}),
		onClose: func() { n.unbind(addr) },
	}
	n.listeners[addr] = l
	return l, nil
}

func (n *Network) unbind(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.listeners, addr)
}

// DialContext connects to a listener on the in-memory network. The network
// argument is accepted for interface compatibility and ignored.
func (n *Network) DialContext(ctx context.Context, _, addr string) (net.Conn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrNetworkClosed
	}
	l, ok := n.listeners[addr]
	if !ok {
		// HTTP clients append a default port ("web" becomes "web:80");
		// fall back to the bare registered name.
		if host, _, splitErr := net.SplitHostPort(addr); splitErr == nil {
			l, ok = n.listeners[host]
		}
	}
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrConnectionRefused, addr)
	}

	client, server := net.Pipe()
	select {
	case l.pending <- server:
		// The send can race a concurrent Close: the conn may have landed
		// in pending after the drain loop finished. Re-check done — the
		// close happens-before the drain, so if done is still open here
		// the drain has not run and Accept (or the drain) owns the conn.
		select {
		case <-l.done:
			client.Close()
			server.Close()
			return nil, fmt.Errorf("%w: %s", ErrConnectionRefused, addr)
		default:
			return client, nil
		}
	case <-l.done:
		client.Close()
		server.Close()
		return nil, fmt.Errorf("%w: %s", ErrConnectionRefused, addr)
	case <-ctx.Done():
		client.Close()
		server.Close()
		return nil, ctx.Err()
	}
}

// Close shuts the network down; existing listeners are closed.
func (n *Network) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	ls := make([]*listener, 0, len(n.listeners))
	for _, l := range n.listeners {
		ls = append(ls, l)
	}
	n.listeners = make(map[string]*listener)
	n.mu.Unlock()
	for _, l := range ls {
		l.closeWithoutUnbind()
	}
	return nil
}

var _ Dialer = (*Network)(nil)

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }

type listener struct {
	addr    memAddr
	pending chan net.Conn
	done    chan struct{}
	onClose func()

	closeOnce sync.Once
}

func (l *listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.pending:
		return c, nil
	case <-l.done:
		return nil, fmt.Errorf("accept %s: %w", l.addr, ErrNetworkClosed)
	}
}

func (l *listener) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.drainPending()
		if l.onClose != nil {
			l.onClose()
		}
	})
	return nil
}

func (l *listener) closeWithoutUnbind() {
	l.closeOnce.Do(func() {
		close(l.done)
		l.drainPending()
	})
}

// drainPending closes server-side pipe conns queued in pending at close
// time. Without this, a conn accepted by the channel but never by
// Accept keeps its dialer blocked until the client's own timeout —
// closing the server end makes the peer's reads fail immediately.
func (l *listener) drainPending() {
	for {
		select {
		case c := <-l.pending:
			c.Close()
		default:
			return
		}
	}
}

func (l *listener) Addr() net.Addr { return l.addr }

// HTTPClient builds an HTTP client whose connections go through the given
// dialer; pass a *Network for in-memory deployments or a *net.Dialer for
// TCP. Connection pooling is tuned for the high-concurrency open-loop
// injector used by the evaluation.
func HTTPClient(d Dialer, timeout time.Duration) *http.Client {
	return &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			DialContext:         d.DialContext,
			MaxIdleConns:        4096,
			MaxIdleConnsPerHost: 1024,
			IdleConnTimeout:     30 * time.Second,
		},
	}
}

// DefaultHTTPClient builds a plain TCP client with a total-request
// timeout. It is the safe fallback where no client is injected — unlike
// http.DefaultClient, which never times out and turns one hung upstream
// into an unbounded goroutine pile-up.
func DefaultHTTPClient(timeout time.Duration) *http.Client {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return HTTPClient(&net.Dialer{Timeout: 10 * time.Second}, timeout)
}

// Serve runs an HTTP handler on a listener in a background goroutine and
// returns a shutdown function. It is the common bring-up path for every
// in-process node (proxy instances, LRS front ends, stubs).
func Serve(l net.Listener, h http.Handler) (shutdown func() error) {
	srv := &http.Server{Handler: h}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// ErrServerClosed and listener-closed errors are the normal
		// shutdown path.
		_ = srv.Serve(l)
	}()
	return func() error {
		// A bounded graceful drain: connections the client pooled
		// without ever sending a request sit in StateNew, which
		// Shutdown would wait on until its deadline. Force-close
		// them after the grace period.
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		err := srv.Shutdown(ctx)
		if err != nil {
			err = srv.Close()
		}
		<-done
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
