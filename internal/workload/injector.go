// Package workload provides the evaluation's load-generation side (§7.1,
// §8): an open-loop HTTP load injector equivalent to the node.js loadtest
// tool the paper uses, and a deterministic synthetic dataset with the
// shape of the MovieLens ml-20m 2014–2015 slice.
package workload

import (
	"context"
	"sync"
	"time"

	"pprox/internal/stats"
)

// RequestFunc issues one request and returns its error; the injector
// measures its round-trip time.
type RequestFunc func(ctx context.Context) error

// Injector drives requests at a fixed open-loop rate: arrivals are
// scheduled by the clock, never by completions, so saturation manifests as
// growing latencies exactly as in the paper's measurements.
type Injector struct {
	// RPS is the arrival rate (requests per second).
	RPS int
	// Duration is the injection period.
	Duration time.Duration
	// Trim drops measurements this close to the start and end of the
	// injection period (§8: "We trim the first and last 15 seconds of
	// each measurement period").
	Trim time.Duration
	// MaxInFlight sheds arrivals beyond this many outstanding requests
	// (0 = unlimited), protecting the injector itself from saturation
	// collapse.
	MaxInFlight int
}

// Result aggregates one injection run.
type Result struct {
	// Latencies holds round-trip times of successful requests inside
	// the measurement window.
	Latencies stats.Distribution
	// Sent counts issued requests; Failed counts errors; Shed counts
	// arrivals dropped by MaxInFlight.
	Sent, Failed, Shed int
	// Elapsed is the wall-clock injection time.
	Elapsed time.Duration
}

// Run injects load and blocks until every outstanding request finishes.
func (inj *Injector) Run(ctx context.Context, fn RequestFunc) Result {
	interval := time.Second / time.Duration(inj.RPS)
	if interval <= 0 {
		interval = time.Millisecond
	}
	recorder := stats.NewRecorder(inj.RPS * int(inj.Duration/time.Second+1))

	var (
		mu           sync.Mutex
		sent, failed int
		shed         int
		inFlight     int
	)
	var wg sync.WaitGroup

	start := time.Now()
	windowLo := start.Add(inj.Trim)
	windowHi := start.Add(inj.Duration - inj.Trim)

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.After(inj.Duration)

loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case <-deadline:
			break loop
		case <-ticker.C:
			mu.Lock()
			if inj.MaxInFlight > 0 && inFlight >= inj.MaxInFlight {
				shed++
				mu.Unlock()
				continue
			}
			inFlight++
			sent++
			mu.Unlock()

			wg.Add(1)
			go func() {
				defer wg.Done()
				t0 := time.Now()
				err := fn(ctx)
				latency := time.Since(t0)

				mu.Lock()
				inFlight--
				if err != nil {
					failed++
				}
				mu.Unlock()
				if err == nil && !t0.Before(windowLo) && !t0.After(windowHi) {
					recorder.Observe(latency)
				}
			}()
		}
	}
	wg.Wait()

	return Result{
		Latencies: recorder.Snapshot(),
		Sent:      sent,
		Failed:    failed,
		Shed:      shed,
		Elapsed:   time.Since(start),
	}
}

// RunRepetitions runs the injection n times and merges the latency
// distributions, as the paper does ("We run each experiment 6 times and
// report the aggregated distribution").
func (inj *Injector) RunRepetitions(ctx context.Context, n int, fn RequestFunc) Result {
	var total Result
	dists := make([]stats.Distribution, 0, n)
	for i := 0; i < n; i++ {
		r := inj.Run(ctx, fn)
		dists = append(dists, r.Latencies)
		total.Sent += r.Sent
		total.Failed += r.Failed
		total.Shed += r.Shed
		total.Elapsed += r.Elapsed
		if ctx.Err() != nil {
			break
		}
	}
	total.Latencies = stats.Merge(dists...)
	return total
}
