package workload

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
	"time"
)

func TestInjectorRateAndMeasurement(t *testing.T) {
	var served atomic.Int64
	inj := &Injector{RPS: 200, Duration: 500 * time.Millisecond}
	res := inj.Run(context.Background(), func(ctx context.Context) error {
		served.Add(1)
		time.Sleep(time.Millisecond)
		return nil
	})

	// Open loop at 200 RPS for 0.5 s ≈ 100 requests; allow generous
	// scheduling slack on a loaded box.
	if res.Sent < 50 || res.Sent > 120 {
		t.Errorf("sent = %d, want ≈ 100", res.Sent)
	}
	if res.Failed != 0 {
		t.Errorf("failed = %d", res.Failed)
	}
	if res.Latencies.N() == 0 {
		t.Error("no latencies recorded")
	}
	if res.Latencies.Median() < time.Millisecond {
		t.Errorf("median %v below the simulated service time", res.Latencies.Median())
	}
	if int(served.Load()) != res.Sent {
		t.Errorf("served %d != sent %d", served.Load(), res.Sent)
	}
}

func TestInjectorCountsFailures(t *testing.T) {
	inj := &Injector{RPS: 100, Duration: 200 * time.Millisecond}
	boom := errors.New("boom")
	res := inj.Run(context.Background(), func(ctx context.Context) error { return boom })
	if res.Failed != res.Sent || res.Sent == 0 {
		t.Errorf("sent=%d failed=%d, want all failed", res.Sent, res.Failed)
	}
	if res.Latencies.N() != 0 {
		t.Error("failed requests contributed latencies")
	}
}

func TestInjectorTrimsWindow(t *testing.T) {
	inj := &Injector{RPS: 100, Duration: 300 * time.Millisecond, Trim: 150 * time.Millisecond}
	res := inj.Run(context.Background(), func(ctx context.Context) error { return nil })
	// Window is [150ms, 150ms] → nearly nothing measured, but requests
	// were still sent.
	if res.Sent == 0 {
		t.Fatal("nothing sent")
	}
	if res.Latencies.N() > res.Sent/2 {
		t.Errorf("trim ineffective: %d of %d measured", res.Latencies.N(), res.Sent)
	}
}

func TestInjectorMaxInFlightSheds(t *testing.T) {
	inj := &Injector{RPS: 500, Duration: 200 * time.Millisecond, MaxInFlight: 1}
	var first atomic.Bool
	res := inj.Run(context.Background(), func(ctx context.Context) error {
		if first.CompareAndSwap(false, true) {
			// The first request hogs the only slot past the end of
			// the injection window.
			time.Sleep(400 * time.Millisecond)
		}
		return nil
	})
	if res.Shed == 0 {
		t.Error("no arrivals shed despite MaxInFlight=1")
	}
}

func TestInjectorContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	inj := &Injector{RPS: 100, Duration: 10 * time.Second}
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	inj.Run(ctx, func(ctx context.Context) error { return nil })
	if time.Since(start) > 2*time.Second {
		t.Error("injector ignored context cancellation")
	}
}

func TestRunRepetitionsMerges(t *testing.T) {
	inj := &Injector{RPS: 100, Duration: 100 * time.Millisecond}
	res := inj.RunRepetitions(context.Background(), 3, func(ctx context.Context) error { return nil })
	if res.Sent < 15 {
		t.Errorf("sent = %d across 3 repetitions", res.Sent)
	}
	if res.Latencies.N() == 0 {
		t.Error("merged distribution empty")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := ScaledMovieLensParams(0.001)
	a := Generate(p)
	b := Generate(p)
	if !reflect.DeepEqual(a.Events[:10], b.Events[:10]) {
		t.Error("generation is not deterministic in the seed")
	}
	p2 := p
	p2.Seed++
	c := Generate(p2)
	if reflect.DeepEqual(a.Events[:10], c.Events[:10]) {
		t.Error("different seeds produced identical streams")
	}
}

func TestGenerateCardinalities(t *testing.T) {
	p := ScaledMovieLensParams(0.01) // ~5.6k events
	d := Generate(p)
	if len(d.Events) != p.Events {
		t.Fatalf("events = %d, want %d", len(d.Events), p.Events)
	}
	users := make(map[string]bool)
	items := make(map[string]bool)
	for _, ev := range d.Events {
		users[ev.User] = true
		items[ev.Item] = true
		if ev.Rating == "" {
			t.Fatal("missing rating payload")
		}
	}
	if len(users) > p.Users || len(items) > p.Items {
		t.Errorf("cardinalities exceed bounds: %d users (≤%d), %d items (≤%d)",
			len(users), p.Users, len(items), p.Items)
	}
	if len(users) < p.Users/10 {
		t.Errorf("only %d distinct users of %d possible; activity too concentrated", len(users), p.Users)
	}
}

func TestGenerateSkew(t *testing.T) {
	d := Generate(ScaledMovieLensParams(0.05))
	counts := make(map[string]int)
	for _, ev := range d.Events {
		counts[ev.Item]++
	}
	max, total := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	mean := float64(total) / float64(len(counts))
	// Zipf skew: the most popular item must dominate the mean heavily.
	if float64(max) < 10*mean {
		t.Errorf("top item count %d vs mean %.1f: distribution not heavy-tailed", max, mean)
	}
}

func TestMovieLensParamsMatchPaper(t *testing.T) {
	p := MovieLensParams()
	if p.Users != 7288 || p.Items != 17141 || p.Events != 562888 {
		t.Errorf("params %+v do not match the paper's slice", p)
	}
}

func TestDistinctUsers(t *testing.T) {
	d := Generate(ScaledMovieLensParams(0.005))
	users := d.DistinctUsers()
	seen := make(map[string]bool)
	for _, u := range users {
		if seen[u] {
			t.Fatalf("duplicate user %q", u)
		}
		seen[u] = true
	}
	if len(users) == 0 {
		t.Fatal("no users")
	}
}

// userMassByRank returns per-user event counts sorted descending and the
// total event count.
func userMassByRank(d *Dataset) (ranked []int, total int) {
	counts := make(map[string]int)
	for _, ev := range d.Events {
		counts[ev.User]++
		total++
	}
	for _, c := range counts {
		ranked = append(ranked, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ranked)))
	return ranked, total
}

func TestGenerateUserSkewHeadMass(t *testing.T) {
	// The recommendation cache's whole value proposition rests on the
	// user-activity head: a few hot users must dominate the GET stream.
	// Zipf(1.2) head mass: the top 1% of users (at least one) must carry
	// a disproportionate share of all events.
	d := Generate(ScaledMovieLensParams(0.05))
	ranked, total := userMassByRank(d)
	head := len(ranked) / 100
	if head < 1 {
		head = 1
	}
	headMass := 0
	for _, c := range ranked[:head] {
		headMass += c
	}
	frac := float64(headMass) / float64(total)
	if frac < 0.10 {
		t.Errorf("top 1%% of users (%d of %d) carry %.1f%% of events; want ≥ 10%% for Zipf(1.2)",
			head, len(ranked), frac*100)
	}
	t.Logf("head mass: top %d/%d users carry %.1f%% of %d events", head, len(ranked), frac*100, total)
}

func TestGenerateUserSkewTailMass(t *testing.T) {
	// Complement of the head test: the bottom half of users by activity
	// must be a thin tail, far below their uniform 50% share.
	d := Generate(ScaledMovieLensParams(0.05))
	ranked, total := userMassByRank(d)
	tailMass := 0
	for _, c := range ranked[len(ranked)/2:] {
		tailMass += c
	}
	frac := float64(tailMass) / float64(total)
	if frac > 0.20 {
		t.Errorf("bottom 50%% of users carry %.1f%% of events; want ≤ 20%% for Zipf(1.2)", frac*100)
	}
	t.Logf("tail mass: bottom half carries %.1f%% of %d events", frac*100, total)
}
