package workload

import (
	"fmt"
	"math/rand"
)

// The paper's experimental workload is the MovieLens ml-20m dataset
// restricted to 2014–2015: "562,888 ratings for 17,141 different movies
// made by 7,288 different users" (§8). The real dataset is not
// redistributable with this repository, so Generate produces a
// deterministic synthetic event stream with the same cardinalities and the
// heavy-tailed popularity structure of movie ratings (see DESIGN.md §1:
// the evaluation exercises the (user, item) stream's shape, never the
// rating semantics).
const (
	// MovieLensUsers is the distinct-user count of the paper's slice.
	MovieLensUsers = 7288
	// MovieLensItems is the distinct-movie count of the paper's slice.
	MovieLensItems = 17141
	// MovieLensEvents is the rating count of the paper's slice.
	MovieLensEvents = 562888
)

// Event is one feedback interaction of the workload.
type Event struct {
	User string
	Item string
	// Rating is the optional payload carried by post(u, i[, p]).
	Rating string
}

// Dataset is a synthetic event stream.
type Dataset struct {
	Events []Event
	Users  int
	Items  int
}

// Params control dataset generation.
type Params struct {
	Users  int
	Items  int
	Events int
	// ItemSkew is the Zipf exponent of item popularity (> 1); movie
	// ratings are strongly skewed, ≈ 1.1.
	ItemSkew float64
	// UserSkew is the Zipf exponent of per-user activity (> 1).
	UserSkew float64
	Seed     int64
}

// MovieLensParams returns the full-size paper workload.
func MovieLensParams() Params {
	return Params{
		Users:    MovieLensUsers,
		Items:    MovieLensItems,
		Events:   MovieLensEvents,
		ItemSkew: 1.1,
		UserSkew: 1.2,
		Seed:     2021, // the paper's publication year; any fixed seed does
	}
}

// ScaledMovieLensParams returns the paper workload scaled down by factor
// (e.g. 0.01 for quick tests), keeping the skew structure.
func ScaledMovieLensParams(factor float64) Params {
	p := MovieLensParams()
	scale := func(n int) int {
		s := int(float64(n) * factor)
		if s < 1 {
			s = 1
		}
		return s
	}
	p.Users = scale(p.Users)
	p.Items = scale(p.Items)
	p.Events = scale(p.Events)
	return p
}

// Generate builds the synthetic dataset. It is deterministic in
// Params.Seed.
func Generate(p Params) *Dataset {
	rng := rand.New(rand.NewSource(p.Seed))
	itemZipf := rand.NewZipf(rng, p.ItemSkew, 1, uint64(p.Items-1))
	userZipf := rand.NewZipf(rng, p.UserSkew, 1, uint64(p.Users-1))

	events := make([]Event, p.Events)
	for i := range events {
		u := int(userZipf.Uint64())
		it := int(itemZipf.Uint64())
		events[i] = Event{
			User:   UserID(u),
			Item:   ItemID(it),
			Rating: fmt.Sprintf("%.1f", 0.5+float64(rng.Intn(10))*0.5),
		}
	}
	return &Dataset{Events: events, Users: p.Users, Items: p.Items}
}

// UserID names the i-th synthetic user.
func UserID(i int) string { return fmt.Sprintf("ml-user-%05d", i) }

// ItemID names the i-th synthetic movie.
func ItemID(i int) string { return fmt.Sprintf("ml-movie-%06d", i) }

// DistinctUsers returns the distinct users appearing in the event stream,
// in first-appearance order — the population the get-phase draws from.
func (d *Dataset) DistinctUsers() []string {
	seen := make(map[string]bool, d.Users)
	var users []string
	for _, ev := range d.Events {
		if !seen[ev.User] {
			seen[ev.User] = true
			users = append(users, ev.User)
		}
	}
	return users
}
