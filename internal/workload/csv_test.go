package workload

import (
	"strings"
	"testing"
	"time"
)

const sampleCSV = `userId,movieId,rating,timestamp
1,10,4.0,1388534400
1,20,3.5,1420070400
2,10,5.0,1420070401
2,30,2.0,1262304000
3,10,4.5,1454284800
`

// Timestamps: 1388534400 = 2014-01-01, 1420070400/1 = 2015-01-01,
// 1262304000 = 2010-01-01, 1454284800 = 2016-02-01.

func TestLoadMovieLensCSVWindow(t *testing.T) {
	d, err := LoadMovieLensCSV(strings.NewReader(sampleCSV), MovieLensWindow())
	if err != nil {
		t.Fatal(err)
	}
	// 2014–2015 keeps the first three rows only.
	if len(d.Events) != 3 {
		t.Fatalf("events = %d, want 3 inside 2014–2015", len(d.Events))
	}
	if d.Users != 2 || d.Items != 2 {
		t.Errorf("cardinalities = %d users, %d items", d.Users, d.Items)
	}
	if d.Events[0].User != "ml-user-1" || d.Events[0].Item != "ml-movie-10" || d.Events[0].Rating != "4.0" {
		t.Errorf("event[0] = %+v", d.Events[0])
	}
}

func TestLoadMovieLensCSVNoWindow(t *testing.T) {
	d, err := LoadMovieLensCSV(strings.NewReader(sampleCSV), TimeWindow{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Events) != 5 {
		t.Errorf("events = %d, want all 5 without a window", len(d.Events))
	}
}

func TestLoadMovieLensCSVRejectsMalformed(t *testing.T) {
	cases := []struct{ name, body string }{
		{"wrong header", "a,b,c,d\n1,2,3,4\n"},
		{"bad timestamp", "userId,movieId,rating,timestamp\n1,2,3,notanumber\n"},
		{"short row", "userId,movieId,rating,timestamp\n1,2\n"},
		{"empty", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := LoadMovieLensCSV(strings.NewReader(tc.body), TimeWindow{}); err == nil {
				t.Error("malformed csv accepted")
			}
		})
	}
}

func TestTimeWindowContains(t *testing.T) {
	w := MovieLensWindow()
	if !w.Contains(time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC)) {
		t.Error("2014 date excluded")
	}
	if w.Contains(time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)) {
		t.Error("window upper bound must be exclusive")
	}
	if !w.Contains(time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC)) {
		t.Error("window lower bound must be inclusive")
	}
}
