package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// csv.go loads the real MovieLens ratings file when available. The paper
// uses ml-20m's ratings.csv restricted to 2014–2015 (§8); the dataset is
// not redistributable with this repository, but an operator who has it
// can reproduce the macro benchmarks on the genuine event stream:
//
//	d, err := workload.LoadMovieLensCSV(f, workload.MovieLensWindow())
//
// The format is the GroupLens standard: header then
// userId,movieId,rating,timestamp rows.

// TimeWindow restricts loaded ratings by their Unix timestamp.
type TimeWindow struct {
	From, To time.Time
}

// Contains reports whether t falls inside the window; a zero window
// accepts everything.
func (w TimeWindow) Contains(t time.Time) bool {
	if w.From.IsZero() && w.To.IsZero() {
		return true
	}
	return !t.Before(w.From) && t.Before(w.To)
}

// MovieLensWindow is the paper's 2014–2015 slice.
func MovieLensWindow() TimeWindow {
	return TimeWindow{
		From: time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC),
		To:   time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC),
	}
}

// LoadMovieLensCSV parses a GroupLens ratings.csv stream into a Dataset,
// keeping only ratings inside the window.
func LoadMovieLensCSV(r io.Reader, window TimeWindow) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	cr.ReuseRecord = true

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: read csv header: %w", err)
	}
	if header[0] != "userId" || header[1] != "movieId" || header[2] != "rating" || header[3] != "timestamp" {
		return nil, fmt.Errorf("workload: unexpected csv header %v (want userId,movieId,rating,timestamp)", header)
	}

	d := &Dataset{}
	users := make(map[string]bool)
	items := make(map[string]bool)
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("workload: csv line %d: %w", line, err)
		}
		ts, err := strconv.ParseInt(rec[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: csv line %d: bad timestamp %q", line, rec[3])
		}
		if !window.Contains(time.Unix(ts, 0).UTC()) {
			continue
		}
		ev := Event{
			User:   "ml-user-" + rec[0],
			Item:   "ml-movie-" + rec[1],
			Rating: rec[2],
		}
		d.Events = append(d.Events, ev)
		users[ev.User] = true
		items[ev.Item] = true
	}
	d.Users = len(users)
	d.Items = len(items)
	return d, nil
}
