package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
)

// compare.go implements `pprox-bench compare old.json new.json`: the CI
// regression gate over two BENCH_*.json snapshots. Checks split into two
// classes. Host-independent checks (SLO verdicts, UA crossings per
// request, LRS gets per request, allocs/op) always run — these are
// properties of the code, not the box. Timing checks (goodput, p99) run
// only when both runs' trial spread is below -max-noise; a noisy run is
// reported and skipped rather than allowed to flap the gate.

// compareOpts are the regression thresholds.
type compareOpts struct {
	maxGoodputDrop   float64 // fractional median-goodput drop allowed
	maxP99Growth     float64 // fractional p99 growth allowed
	p99SlackMS       float64 // absolute p99 slack added on top of growth
	maxAllocsGrowth  float64 // fractional allocs/op growth allowed
	maxCrossingsGrow float64 // absolute UA crossings/request growth allowed
	maxLRSGetsGrow   float64 // absolute LRS gets/request growth allowed
	minIncSpeedup    float64 // incremental apply vs full-train advantage floor
	maxNoise         float64 // max trial spread before timing checks skip
}

func defaultCompareOpts() compareOpts {
	return compareOpts{
		maxGoodputDrop:   0.25,
		maxP99Growth:     1.0,
		p99SlackMS:       50,
		maxAllocsGrowth:  0.25,
		maxCrossingsGrow: 0.02,
		maxLRSGetsGrow:   0.05,
		minIncSpeedup:    10,
		maxNoise:         0.35,
	}
}

// runCompare is the `compare` subcommand entry point; returns the
// process exit code (0 ok, 2 usage/schema error, 3 regression).
func runCompare(args []string) int {
	opts := defaultCompareOpts()
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	fs.Float64Var(&opts.maxGoodputDrop, "max-goodput-drop", opts.maxGoodputDrop,
		"fail if median goodput drops by more than this fraction")
	fs.Float64Var(&opts.maxP99Growth, "max-p99-growth", opts.maxP99Growth,
		"fail if client p99 grows by more than this fraction (plus -p99-slack-ms)")
	fs.Float64Var(&opts.p99SlackMS, "p99-slack-ms", opts.p99SlackMS,
		"absolute p99 growth always tolerated, in milliseconds")
	fs.Float64Var(&opts.maxAllocsGrowth, "max-allocs-growth", opts.maxAllocsGrowth,
		"fail if any tracked benchmark's allocs/op grows by more than this fraction")
	fs.Float64Var(&opts.maxCrossingsGrow, "max-crossings-growth", opts.maxCrossingsGrow,
		"fail if UA enclave crossings per request grow by more than this absolute amount")
	fs.Float64Var(&opts.maxLRSGetsGrow, "max-lrs-gets-growth", opts.maxLRSGetsGrow,
		"fail if LRS gets per request grow by more than this absolute amount")
	fs.Float64Var(&opts.minIncSpeedup, "min-incremental-speedup", opts.minIncSpeedup,
		"fail if the per-event incremental apply is not at least this many times cheaper than a full train")
	fs.Float64Var(&opts.maxNoise, "max-noise", opts.maxNoise,
		"skip timing checks when either run's trial spread (max-min)/median exceeds this")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: pprox-bench compare [flags] old.json new.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	old, err := loadBenchReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		return 2
	}
	nu, err := loadBenchReport(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		return 2
	}
	regressions := compareReports(old, nu, opts, os.Stdout)
	if len(regressions) > 0 {
		fmt.Printf("\nFAIL: %d regression(s) against %s\n", len(regressions), fs.Arg(0))
		return 3
	}
	fmt.Printf("\nOK: %s within thresholds of %s\n", fs.Arg(1), fs.Arg(0))
	return 0
}

// compareReports runs every check, prints its verdict line by line, and
// returns the list of regressions found.
func compareReports(old, nu BenchReport, opts compareOpts, w *os.File) []string {
	var regressions []string
	fail := func(format string, a ...any) {
		msg := fmt.Sprintf(format, a...)
		regressions = append(regressions, msg)
		fmt.Fprintf(w, "  REGRESSION  %s\n", msg)
	}
	pass := func(format string, a ...any) {
		fmt.Fprintf(w, "  ok          %s\n", fmt.Sprintf(format, a...))
	}
	skip := func(format string, a ...any) {
		fmt.Fprintf(w, "  skip        %s\n", fmt.Sprintf(format, a...))
	}

	fmt.Fprintf(w, "compare %s: %s (%s) -> %s (%s)\n",
		old.Scenario, old.GitSHA, old.GoVersion, nu.GitSHA, nu.GoVersion)

	if old.Scenario != nu.Scenario {
		fail("scenario mismatch: %q vs %q", old.Scenario, nu.Scenario)
		return regressions // nothing else is comparable
	}

	// --- Host-independent checks: always run. ---------------------------

	// SLO verdicts of the new run must be healthy. The old run's states
	// are not checked: a broken baseline should be replaced, not matched.
	if nu.AuditState != "" && nu.AuditState != "ok" {
		fail("new run audit state = %q, want ok", nu.AuditState)
	} else if nu.AuditState != "" {
		pass("audit state ok")
	}
	if nu.PerfSLOState != "" && nu.PerfSLOState != "ok" {
		fail("new run perf SLO state = %q, want ok", nu.PerfSLOState)
	} else if nu.PerfSLOState != "" {
		pass("perf SLO state ok")
	}
	if nu.FaultInjected {
		fail("new run was produced with -inject-fault; not a comparable measurement")
	}

	if old.UACrossingsPerRequest > 0 {
		limit := old.UACrossingsPerRequest + opts.maxCrossingsGrow
		if nu.UACrossingsPerRequest > limit {
			fail("UA crossings/request %.4f exceeds %.4f (old %.4f + %.2f)",
				nu.UACrossingsPerRequest, limit, old.UACrossingsPerRequest, opts.maxCrossingsGrow)
		} else {
			pass("UA crossings/request %.4f (old %.4f)", nu.UACrossingsPerRequest, old.UACrossingsPerRequest)
		}
	}

	if old.LRSGetsPerRequest != nil && nu.LRSGetsPerRequest != nil {
		limit := *old.LRSGetsPerRequest + opts.maxLRSGetsGrow
		if *nu.LRSGetsPerRequest > limit {
			fail("LRS gets/request %.4f exceeds %.4f (old %.4f + %.2f)",
				*nu.LRSGetsPerRequest, limit, *old.LRSGetsPerRequest, opts.maxLRSGetsGrow)
		} else {
			pass("LRS gets/request %.4f (old %.4f)", *nu.LRSGetsPerRequest, *old.LRSGetsPerRequest)
		}
	}

	// The freshness-economics ratio is a same-process, same-log quotient,
	// so it survives host changes; it must stay above the floor and must
	// not silently vanish from the snapshot.
	if nu.IncrementalSpeedup != nil {
		if *nu.IncrementalSpeedup < opts.minIncSpeedup {
			fail("incremental speedup ×%.1f below floor ×%.1f",
				*nu.IncrementalSpeedup, opts.minIncSpeedup)
		} else {
			prev := "none"
			if old.IncrementalSpeedup != nil {
				prev = fmt.Sprintf("×%.0f", *old.IncrementalSpeedup)
			}
			pass("incremental speedup ×%.0f (floor ×%.0f, old %s)",
				*nu.IncrementalSpeedup, opts.minIncSpeedup, prev)
		}
	} else if old.IncrementalSpeedup != nil {
		fail("incremental speedup missing from new snapshot (old had ×%.0f)", *old.IncrementalSpeedup)
	}

	// Alloc counts per op are deterministic per commit; time per op is
	// not, so only the alloc dimensions gate.
	names := make([]string, 0, len(old.AllocsPerOp))
	for name := range old.AllocsPerOp {
		if _, ok := nu.AllocsPerOp[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		o, n := old.AllocsPerOp[name], nu.AllocsPerOp[name]
		limit := float64(o.AllocsPerOp) * (1 + opts.maxAllocsGrowth)
		if o.AllocsPerOp >= 0 && float64(n.AllocsPerOp) > limit {
			fail("%s allocs/op %d exceeds %.0f (old %d + %.0f%%)",
				name, n.AllocsPerOp, limit, o.AllocsPerOp, opts.maxAllocsGrowth*100)
		} else {
			pass("%s allocs/op %d (old %d)", name, n.AllocsPerOp, o.AllocsPerOp)
		}
	}

	// --- Timing checks: only on quiet runs. -----------------------------

	oldSpread, newSpread := old.GoodputTrials.spread(), nu.GoodputTrials.spread()
	if oldSpread > opts.maxNoise || newSpread > opts.maxNoise {
		skip("timing checks: trial spread old %.2f / new %.2f exceeds %.2f — rerun on a quieter host",
			oldSpread, newSpread, opts.maxNoise)
		return regressions
	}

	if old.GoodputTrials.MedianRPS > 0 {
		floor := old.GoodputTrials.MedianRPS * (1 - opts.maxGoodputDrop)
		if nu.GoodputTrials.MedianRPS < floor {
			fail("median goodput %.1f rps below %.1f (old %.1f - %.0f%%)",
				nu.GoodputTrials.MedianRPS, floor, old.GoodputTrials.MedianRPS, opts.maxGoodputDrop*100)
		} else {
			pass("median goodput %.1f rps (old %.1f, spread %.2f/%.2f)",
				nu.GoodputTrials.MedianRPS, old.GoodputTrials.MedianRPS, oldSpread, newSpread)
		}
	}

	if old.Latency.P99MS > 0 {
		ceil := old.Latency.P99MS*(1+opts.maxP99Growth) + opts.p99SlackMS
		if nu.Latency.P99MS > ceil {
			fail("client p99 %.1fms exceeds %.1fms (old %.1fms + %.0f%% + %.0fms slack)",
				nu.Latency.P99MS, ceil, old.Latency.P99MS, opts.maxP99Growth*100, opts.p99SlackMS)
		} else {
			pass("client p99 %.1fms (old %.1fms)", nu.Latency.P99MS, old.Latency.P99MS)
		}
	}

	return regressions
}
