package main

import (
	"math"
	"strings"
	"testing"

	"pprox/internal/metrics"
)

// exposition is a hand-written scrape in the exact shape the registry
// renders pprox_proxy_stage_seconds, including an escaped label value
// and NaN/Inf samples the scraper must not choke on.
const exposition = `# HELP pprox_proxy_stage_seconds Time spent per proxy pipeline stage.
# TYPE pprox_proxy_stage_seconds histogram
pprox_proxy_stage_seconds_bucket{layer="ua",node="ua-0",stage="forward",le="0.005"} 8
pprox_proxy_stage_seconds_bucket{layer="ua",node="ua-0",stage="forward",le="+Inf"} 10
pprox_proxy_stage_seconds_sum{layer="ua",node="ua-0",stage="forward"} 0.042
pprox_proxy_stage_seconds_count{layer="ua",node="ua-0",stage="forward"} 10
pprox_weird{path="with \"quotes\" and \\ space"} 1
pprox_nan_sum NaN
pprox_inf_sum +Inf
`

func TestParseExpositionAndSeriesLabels(t *testing.T) {
	set := metrics.ParseExposition(exposition)
	if v := set[`pprox_proxy_stage_seconds_count{layer="ua",node="ua-0",stage="forward"}`]; v != 10 {
		t.Fatalf("count sample = %v, want 10", v)
	}
	if !math.IsNaN(set["pprox_nan_sum"]) || !math.IsInf(set["pprox_inf_sum"], 1) {
		t.Fatalf("NaN/Inf samples mangled: %v", set)
	}

	for series := range set {
		if !strings.HasPrefix(series, "pprox_weird") {
			continue
		}
		name, labels := seriesLabels(series)
		if name != "pprox_weird" {
			t.Errorf("name = %q", name)
		}
		if labels["path"] != `with "quotes" and \ space` {
			t.Errorf("escaped label value = %q", labels["path"])
		}
	}
}

func TestStageBreakdownDeltas(t *testing.T) {
	before := metrics.ParseExposition(exposition)
	after := metrics.ParseExposition(strings.NewReplacer(
		"} 8", "} 20", "} 10", "} 25", " 0.042", " 0.125",
	).Replace(exposition))

	dist := stageBreakdown(before, after)
	cell := dist["ua"]["forward"]
	if cell == nil {
		t.Fatalf("no ua/forward cell: %v", dist)
	}
	if cell.count != 15 {
		t.Errorf("count delta = %v, want 15", cell.count)
	}
	if math.Abs(cell.sum-0.083) > 1e-9 {
		t.Errorf("sum delta = %v, want 0.083", cell.sum)
	}
	// 12 of 15 new observations landed in the 5ms bucket; p50 must
	// resolve to that bound, p95 to the +Inf stand-in.
	if q := cell.quantile(0.5); q != 0.005 {
		t.Errorf("p50 = %v, want 0.005", q)
	}
	if q := cell.quantile(0.95); q < 1e307 {
		t.Errorf("p95 = %v, want the +Inf stand-in", q)
	}
}
