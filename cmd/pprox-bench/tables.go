package main

import (
	"fmt"

	"pprox/internal/cluster"
)

func onOff(b bool) string {
	if b {
		return "yes"
	}
	return "—"
}

func printTable2() {
	fmt.Println("\n=== Table 2 — micro-benchmark configurations ===")
	fmt.Printf("%-4s %-5s %-4s %-10s %-3s %-3s %-3s %-6s %s\n",
		"name", "enc", "sgx", "item-pseud", "S", "UA", "IA", "maxRPS", "figures")
	for _, c := range cluster.MicroConfigs() {
		s := "—"
		if c.Shuffle > 0 {
			s = fmt.Sprintf("%d", c.Shuffle)
		}
		itemCol := onOff(c.ItemPseudonyms)
		if c.Encryption && !c.ItemPseudonyms {
			itemCol = "off (★)"
		}
		fmt.Printf("%-4s %-5s %-4s %-10s %-3s %-3d %-3d %-6d %v\n",
			c.Name, onOff(c.Encryption), onOff(c.SGX), itemCol, s, c.UA, c.IA, c.MaxRPS, c.Figures)
	}
}

func printTable3() {
	fmt.Println("\n=== Table 3 — macro-benchmark configurations ===")
	fmt.Printf("%-4s %-6s %-3s %-3s %-3s %-12s %-6s %s\n",
		"name", "proxy", "S", "UA", "IA", "LRS(fe+sup)", "nodes", "maxRPS")
	printMacro := func(cs []cluster.MacroConfig) {
		for _, c := range cs {
			s := "—"
			if c.Shuffle > 0 {
				s = fmt.Sprintf("%d", c.Shuffle)
			}
			fmt.Printf("%-4s %-6s %-3s %-3d %-3d %2d+%-9d %-6d %d\n",
				c.Name, onOff(c.Proxy), s, c.UA, c.IA, c.LRSFrontends, c.LRSSupport, c.TotalNodes(), c.MaxRPS)
		}
	}
	fmt.Println("-- baseline: only LRS --")
	printMacro(cluster.BaselineConfigs())
	fmt.Println("-- full: proxy service and LRS --")
	printMacro(cluster.FullConfigs())
}
