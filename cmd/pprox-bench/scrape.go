package main

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"pprox/internal/cluster"
	"pprox/internal/metrics"
	"pprox/internal/proxy"
)

// scrape.go reads the deployment's own /metrics endpoints — the same
// Prometheus text format an operator scrapes — and turns the before/after
// difference of the pprox_proxy_stage_seconds histograms into a per-stage
// latency breakdown, printed next to the end-to-end candlesticks. The
// round trip through the exposition format is deliberate: the benchmark
// exercises the observability path it reports on.

// scrapeSet aliases the shared exposition-format reader in
// internal/metrics, which the registry's own tests round-trip against
// the render side (escaped labels, NaN/Inf samples).
type scrapeSet = metrics.ScrapeSet

// scrapeDeployment reads the deployment's metrics. All nodes share the
// deployment registry, so one node suffices; scraping by node address
// still goes over the (in-memory) wire like a real scrape would.
func scrapeDeployment(d *cluster.Deployment, httpClient *http.Client) (scrapeSet, error) {
	resp, err := httpClient.Get("http://ua-0/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return metrics.ParseExposition(string(body)), nil
}

// seriesLabels aliases the shared series-identity decomposer.
func seriesLabels(series string) (name string, labels map[string]string) {
	return metrics.ParseSeries(series)
}

// stageDist is one (layer, stage) cell of the breakdown: the histogram
// delta accumulated across that layer's nodes.
type stageDist struct {
	count   float64
	sum     float64
	buckets map[float64]float64 // le → cumulative count delta
}

// quantile returns the smallest bucket bound covering fraction q of the
// observations — the histogram-resolution upper bound on that quantile.
func (s *stageDist) quantile(q float64) float64 {
	les := make([]float64, 0, len(s.buckets))
	for le := range s.buckets {
		les = append(les, le)
	}
	sort.Float64s(les)
	target := q * s.count
	for _, le := range les {
		if s.buckets[le] >= target {
			return le
		}
	}
	return les[len(les)-1]
}

// stageBreakdown computes per-(layer, stage) histogram deltas between two
// scrapes of pprox_proxy_stage_seconds.
func stageBreakdown(before, after scrapeSet) map[string]map[string]*stageDist {
	const fam = "pprox_proxy_stage_seconds"
	out := make(map[string]map[string]*stageDist)
	cell := func(layer, stage string) *stageDist {
		if out[layer] == nil {
			out[layer] = make(map[string]*stageDist)
		}
		if out[layer][stage] == nil {
			out[layer][stage] = &stageDist{buckets: make(map[float64]float64)}
		}
		return out[layer][stage]
	}
	for series, v := range after {
		name, labels := seriesLabels(series)
		if !strings.HasPrefix(name, fam) {
			continue
		}
		delta := v - before[series]
		c := cell(labels["layer"], labels["stage"])
		switch name {
		case fam + "_count":
			c.count += delta
		case fam + "_sum":
			c.sum += delta
		case fam + "_bucket":
			le, err := strconv.ParseFloat(labels["le"], 64)
			if err != nil { // +Inf
				le = inf
			}
			c.buckets[le] += delta
		}
	}
	return out
}

// inf stands in for the +Inf bucket bound in the breakdown maps.
const inf = 1e308

func fmtSeconds(v float64) string {
	switch {
	case v >= inf:
		return ">10s"
	case v >= 1:
		return fmt.Sprintf("%.2gs", v)
	default:
		return fmt.Sprintf("%.3gms", v*1000)
	}
}

// printStageBreakdown renders the per-stage table for each proxy layer,
// pipeline order, with histogram-resolution p50/p95 upper bounds.
func printStageBreakdown(before, after scrapeSet) {
	dist := stageBreakdown(before, after)
	for _, layer := range []string{"ua", "ia"} {
		stages := dist[layer]
		if len(stages) == 0 {
			continue
		}
		fmt.Printf("  %s per-stage breakdown (scraped from /metrics):\n", layer)
		fmt.Printf("    %-16s %8s %10s %10s %10s\n", "stage", "count", "mean", "p50≤", "p95≤")
		for _, stage := range proxy.Stages {
			s := stages[stage]
			if s == nil || s.count == 0 {
				continue
			}
			fmt.Printf("    %-16s %8.0f %10s %10s %10s\n",
				stage, s.count, fmtSeconds(s.sum/s.count),
				fmtSeconds(s.quantile(0.5)), fmtSeconds(s.quantile(0.95)))
		}
	}
}

// printFaultHandling renders the fault-handling counter deltas — retries,
// breaker fail-fasts and transitions, balancer ejections, and LRS
// idempotency dedups — so a bench run under fault injection shows the cost
// its resilience machinery paid. Prints nothing when no counter moved.
func printFaultHandling(before, after scrapeSet) {
	families := []struct{ label, fam string }{
		{"forward retries", "pprox_proxy_forward_retries_total"},
		{"breaker fail-fasts", "pprox_proxy_fail_fast_total"},
		{"breaker opens", "pprox_proxy_breaker_opens_total"},
		{"breaker re-admissions", "pprox_proxy_breaker_readmissions_total"},
		{"balancer ejections", "pprox_balancer_ejections_total"},
		{"balancer re-admissions", "pprox_balancer_readmissions_total"},
		{"LRS duplicate events", "pprox_lrs_dup_events_total"},
	}
	printed := false
	for _, f := range families {
		total := 0.0
		perLayer := make(map[string]float64)
		for series, v := range after {
			name, labels := seriesLabels(series)
			if name != f.fam {
				continue
			}
			delta := v - before[series]
			total += delta
			if l := labels["layer"]; l != "" && delta != 0 {
				perLayer[l] += delta
			}
		}
		if total == 0 {
			continue
		}
		if !printed {
			fmt.Println("  fault handling (scraped from /metrics):")
			printed = true
		}
		var parts []string
		for _, layer := range []string{"ua", "ia"} {
			if n := perLayer[layer]; n != 0 {
				parts = append(parts, fmt.Sprintf("%s %.0f", layer, n))
			}
		}
		if len(parts) > 0 {
			fmt.Printf("    %-22s %6.0f  (%s)\n", f.label, total, strings.Join(parts, ", "))
		} else {
			fmt.Printf("    %-22s %6.0f\n", f.label, total)
		}
	}
}

// bracketScrape runs fn between two scrapes of the deployment's metrics,
// so the caller can print the candlestick first and the per-stage table
// (from the scrape delta) underneath it.
func bracketScrape(d *cluster.Deployment, fn func()) (before, after scrapeSet, err error) {
	httpClient := d.HTTPClient(5 * time.Second)
	if before, err = scrapeDeployment(d, httpClient); err != nil {
		return nil, nil, fmt.Errorf("pre-run scrape: %w", err)
	}
	fn()
	if after, err = scrapeDeployment(d, httpClient); err != nil {
		return nil, nil, fmt.Errorf("post-run scrape: %w", err)
	}
	return before, after, nil
}
