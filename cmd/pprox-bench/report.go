package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"pprox/internal/cluster"
	"pprox/internal/message"
	"pprox/internal/metrics"
	"pprox/internal/ppcrypto"
	"pprox/internal/stats"
)

// report.go is the durable half of the benchmark suite: each scenario can
// emit a BENCH_<scenario>.json snapshot (schema below) of everything its
// gates looked at — goodput with per-trial variance, client latency
// quantiles, per-stage histogram quantiles scraped from /metrics, enclave
// crossings per request, allocations per op for the hot cryptographic
// operations, and the audit + perfslo verdicts — attributed to the commit
// via the embedded build info. `pprox-bench compare` (compare.go) diffs
// two snapshots and exits non-zero on regression, which is what the CI
// perf-trajectory job gates on.

// benchSchema versions the BENCH_*.json layout.
const benchSchema = "pprox-bench/1"

// TrialStats is the per-trial goodput spread. Best-of-N stays the
// headline (one-sided noise: a shared CI box only ever slows a run
// down), but min/median/max let compare reject a noisy run instead of
// flapping on it.
type TrialStats struct {
	Trials    int       `json:"trials"`
	MinRPS    float64   `json:"min_rps"`
	MedianRPS float64   `json:"median_rps"`
	MaxRPS    float64   `json:"max_rps"`
	BestRPS   float64   `json:"best_rps"`
	AllRPS    []float64 `json:"all_rps"`
}

// newTrialStats summarizes per-trial goodput samples.
func newTrialStats(rps []float64) TrialStats {
	if len(rps) == 0 {
		return TrialStats{}
	}
	sorted := append([]float64(nil), rps...)
	sort.Float64s(sorted)
	return TrialStats{
		Trials:    len(sorted),
		MinRPS:    sorted[0],
		MedianRPS: sorted[len(sorted)/2],
		MaxRPS:    sorted[len(sorted)-1],
		BestRPS:   sorted[len(sorted)-1],
		AllRPS:    sorted,
	}
}

// spread is the trial noise measure: (max−min)/median, 0 for degenerate
// inputs. compare refuses to draw timing conclusions past a bound.
func (t TrialStats) spread() float64 {
	if t.MedianRPS <= 0 {
		return 0
	}
	return (t.MaxRPS - t.MinRPS) / t.MedianRPS
}

// LatencyQuantiles are client-observed end-to-end quantiles in
// milliseconds.
type LatencyQuantiles struct {
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

func latencyQuantiles(d stats.Distribution) LatencyQuantiles {
	ms := func(v time.Duration) float64 { return float64(v) / float64(time.Millisecond) }
	return LatencyQuantiles{
		P50MS: ms(d.Quantile(0.5)),
		P95MS: ms(d.Quantile(0.95)),
		P99MS: ms(d.Quantile(0.99)),
	}
}

// StageQuantiles is one (layer, stage) row of the scraped histogram
// breakdown: histogram-resolution upper bounds, in milliseconds.
type StageQuantiles struct {
	Count  float64 `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// stageQuantiles converts a scraped breakdown into the report's nested
// layer → stage map.
func stageQuantiles(dist map[string]map[string]*stageDist) map[string]map[string]StageQuantiles {
	out := make(map[string]map[string]StageQuantiles, len(dist))
	for layer, stages := range dist {
		for stage, s := range stages {
			if s == nil || s.count == 0 {
				continue
			}
			if out[layer] == nil {
				out[layer] = make(map[string]StageQuantiles, len(stages))
			}
			ms := func(v float64) float64 {
				if v >= inf {
					return -1 // +Inf bucket: beyond the largest bound
				}
				return v * 1000
			}
			out[layer][stage] = StageQuantiles{
				Count:  s.count,
				MeanMS: s.sum / s.count * 1000,
				P50MS:  ms(s.quantile(0.5)),
				P95MS:  ms(s.quantile(0.95)),
				P99MS:  ms(s.quantile(0.99)),
			}
		}
	}
	return out
}

// AllocStat is one in-binary micro-benchmark result.
type AllocStat struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// BenchReport is the BENCH_<scenario>.json schema.
type BenchReport struct {
	Schema   string `json:"schema"`
	Scenario string `json:"scenario"`
	// Build identity: the commit this snapshot measured.
	GitSHA    string `json:"git_sha"`
	GoVersion string `json:"go_version"`
	Version   string `json:"version"`
	// Config echoes the scenario's knobs (S, epochs, trials, ...).
	Config map[string]any `json:"config"`
	// GoodputRPS is the headline (best-trial) goodput; GoodputTrials
	// carries the full spread.
	GoodputRPS    float64          `json:"goodput_rps"`
	GoodputTrials TrialStats       `json:"goodput_trials"`
	Latency       LatencyQuantiles `json:"latency"`
	// Stages are per-(layer, stage) histogram quantiles scraped from
	// /metrics after the measured run.
	Stages map[string]map[string]StageQuantiles `json:"stages,omitempty"`
	// UACrossingsPerRequest is the enclave-boundary amortization the
	// batch pipeline exists to minimize (host-independent).
	UACrossingsPerRequest float64 `json:"ua_crossings_per_request,omitempty"`
	// LRSGetsPerRequest / CacheHitRate are the cache scenario's
	// offload measures (host-independent).
	LRSGetsPerRequest *float64 `json:"lrs_gets_per_request,omitempty"`
	CacheHitRate      *float64 `json:"cache_hit_rate,omitempty"`
	// IncrementalSpeedup is the lrs10x scenario's freshness-economics
	// ratio: one full TrainNow divided by the mean per-event incremental
	// apply, both measured in the same process on the same log. A ratio,
	// so host speed largely divides out.
	IncrementalSpeedup *float64 `json:"incremental_speedup,omitempty"`
	// AllocsPerOp are in-binary micro-benchmarks of the hot
	// cryptographic operations (testing.Benchmark, host-independent
	// alloc counts).
	AllocsPerOp map[string]AllocStat `json:"allocs_per_op,omitempty"`
	// AuditState / PerfSLOState are the deployed SLO engines' verdicts
	// after the measured run ("ok", "warn", "violated").
	AuditState   string `json:"audit_state"`
	PerfSLOState string `json:"perfslo_state"`
	// FaultInjected marks runs driven with -inject-fault: deliberately
	// degraded, never a baseline.
	FaultInjected bool `json:"fault_injected,omitempty"`
}

// newBenchReport stamps an empty report with schema and build identity.
func newBenchReport(scenario string) BenchReport {
	bi := metrics.ReadBuildInfo()
	return BenchReport{
		Schema:    benchSchema,
		Scenario:  scenario,
		GitSHA:    bi.GitSHA,
		GoVersion: bi.GoVersion,
		Version:   bi.Version,
		Config:    make(map[string]any),
	}
}

// write emits the report as pretty JSON.
func (r BenchReport) write(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("(bench report written to %s)\n", path)
	return nil
}

// loadBenchReport reads and schema-checks one snapshot.
func loadBenchReport(path string) (BenchReport, error) {
	var r BenchReport
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != benchSchema {
		return r, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, benchSchema)
	}
	return r, nil
}

// runAllocBenchmarks measures allocations per op for the hot
// cryptographic operations via testing.Benchmark — the same operations
// the root bench_test.go tracks, runnable from this binary so the
// numbers land in the JSON snapshot. Alloc counts are deterministic per
// commit, so compare can gate on them tightly even across hosts.
func runAllocBenchmarks() (map[string]AllocStat, error) {
	out := make(map[string]AllocStat, 3)

	symKey, err := ppcrypto.NewSymmetricKey()
	if err != nil {
		return nil, err
	}
	kp, err := ppcrypto.GenerateKeyPair()
	if err != nil {
		return nil, err
	}
	block, err := ppcrypto.PadID("user-12345")
	if err != nil {
		return nil, err
	}
	items := make([]string, message.MaxRecommendations)
	for i := range items {
		items[i] = fmt.Sprintf("item-%06d", i)
	}

	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"crypto_pseudonymize", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ppcrypto.Pseudonymize(symKey, "user-12345"); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"crypto_oaep_encrypt", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ppcrypto.EncryptOAEP(kp.Public, block); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"itemlist_encode", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				packed, err := message.EncodeItemList(items)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ppcrypto.SymEncrypt(symKey, packed); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"batch_marshal", func(b *testing.B) {
			// One shuffle epoch's UA→IA envelope through the binary frame
			// codec, into a recycled buffer — the send-side hot path.
			body := bytes.Repeat([]byte{0xC7}, 256)
			entries := make([]message.BatchEntry, 32)
			for i := range entries {
				entries[i] = message.BatchEntry{ID: i, Kind: message.BatchKindGet, Body: body}
			}
			var buf []byte
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = message.MarshalBatchEpoch(buf[:0], uint64(i+1), entries)
				if err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"full_path_get", func(b *testing.B) {
			// Whole-stack heap churn per request on the m3 path
			// (encryption + SGX, no shuffle) with the frame transport on
			// both hops — the number the hopwire PR drives down against
			// the HTTP-hop baseline the root BenchmarkAblation_BodyBuffers
			// documents (798 allocs/op, 123965 B/op).
			d, err := cluster.Deploy(cluster.Spec{
				ProxyEnabled: true, UA: 1, IA: 1,
				Encryption: true, ItemPseudonyms: true,
				UseStub: true, LRSFrontends: 1,
				Hopwire: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			cl := d.Client(30 * time.Second)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cl.Get(ctx, "bench-user"); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
	for _, bench := range benches {
		res := testing.Benchmark(bench.fn)
		if res.N == 0 {
			return nil, fmt.Errorf("alloc benchmark %s did not run", bench.name)
		}
		out[bench.name] = AllocStat{
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
	}
	return out, nil
}
