// Command pprox-bench regenerates every table and figure of the PProx
// paper's evaluation (§8):
//
//	pprox-bench table2          # micro-benchmark configurations (Table 2)
//	pprox-bench table3          # macro-benchmark configurations (Table 3)
//	pprox-bench fig6            # privacy-feature latency breakdown
//	pprox-bench fig7            # impact of shuffling
//	pprox-bench fig8            # proxy horizontal scaling
//	pprox-bench fig9            # Harness LRS baseline
//	pprox-bench fig10           # full integrated system
//	pprox-bench shuffle         # §6.2 adversary linking probability
//	pprox-bench cache           # in-enclave recommendation cache, Zipf gets
//	pprox-bench lrs10x          # sharded WAL LRS, incremental CCO, 10× MovieLens cardinality
//	pprox-bench measured        # real-plane latency spot-check (in-process stack)
//	pprox-bench all             # everything above
//
// Figures are produced by the deterministic cluster simulator (see
// DESIGN.md §1 for the testbed substitution); `measured` cross-checks the
// request path with real cryptography on the in-process deployment.
//
// The batch and cache scenarios additionally emit machine-readable
// BENCH_<scenario>.json snapshots with -out, and
//
//	pprox-bench compare old.json new.json
//
// diffs two snapshots against regression thresholds, exiting non-zero on
// regression — the CI perf-trajectory gate (see README "Performance
// trajectory").
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"pprox/internal/obslog"
	"pprox/internal/sim"
)

func main() {
	// The compare subcommand has its own FlagSet; dispatch before the
	// experiment flags can reject its arguments.
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(runCompare(os.Args[2:]))
	}

	quick := flag.Bool("quick", false, "shorter simulations (smoke-test quality)")
	duration := flag.Duration("duration", 0, "override virtual injection window per point")
	reps := flag.Int("reps", 0, "override repetitions per point")
	csvDir := flag.String("csv", "", "also write each figure's series as CSV into this directory")
	out := flag.String("out", "", "write BENCH_<scenario>.json snapshots (file path, or directory for multiple scenarios)")
	fault := flag.Duration("inject-fault", 0, "arm a latency fault on the LRS for the batch scenario (disables its gates)")
	flag.Usage = usage
	flag.Parse()
	csvOut = *csvDir
	outPath = *out
	faultDelay = *fault

	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}

	opts := sim.DefaultRunOptions()
	if *quick {
		opts = sim.QuickRunOptions()
	}
	if *duration > 0 {
		opts.Duration = *duration
		if opts.Trim > *duration/4 {
			opts.Trim = *duration / 10
		}
	}
	if *reps > 0 {
		opts.Repetitions = *reps
	}

	if err := run(flag.Arg(0), opts); err != nil {
		obslog.New(os.Stderr, "pprox-bench", nil).Error("fatal", "error", err.Error())
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: pprox-bench [-quick] [-duration D] [-reps N] [-out PATH] <experiment>
       pprox-bench compare [flags] old.json new.json

experiments:
  table2 table3 fig6 fig7 fig8 fig9 fig10 shuffle cache batch lrs10x elastic measured measured-macro all
`)
	flag.PrintDefaults()
}

func run(what string, opts sim.RunOptions) error {
	switch what {
	case "table2":
		printTable2()
	case "table3":
		printTable3()
	case "fig6":
		printFigure("Figure 6 — impact of privacy features (stub LRS)", sim.Figure6(opts))
	case "fig7":
		printFigure("Figure 7 — impact of shuffling (stub LRS)", sim.Figure7(opts))
	case "fig8":
		printFigure("Figure 8 — proxy service scaling (stub LRS, S=10)", sim.Figure8(opts))
	case "fig9":
		printFigure("Figure 9 — Harness LRS baseline", sim.Figure9(opts))
	case "fig10":
		printFigure("Figure 10 — PProx + Harness integrated", sim.Figure10(opts))
	case "shuffle":
		return runShuffleExperiment()
	case "cache":
		return runCacheScenario(opts)
	case "batch":
		return runBatchScenario(opts)
	case "lrs10x":
		return runLRS10xScenario(opts)
	case "elastic":
		printElastic(opts)
	case "measured":
		return runMeasured()
	case "measured-macro":
		return runMeasuredMacro()
	case "all":
		printTable2()
		printTable3()
		printFigure("Figure 6 — impact of privacy features (stub LRS)", sim.Figure6(opts))
		printFigure("Figure 7 — impact of shuffling (stub LRS)", sim.Figure7(opts))
		printFigure("Figure 8 — proxy service scaling (stub LRS, S=10)", sim.Figure8(opts))
		printFigure("Figure 9 — Harness LRS baseline", sim.Figure9(opts))
		printFigure("Figure 10 — PProx + Harness integrated", sim.Figure10(opts))
		if err := runShuffleExperiment(); err != nil {
			return err
		}
		if err := runCacheScenario(opts); err != nil {
			return err
		}
		if err := runBatchScenario(opts); err != nil {
			return err
		}
		if err := runLRS10xScenario(opts); err != nil {
			return err
		}
		printElastic(opts)
		if err := runMeasured(); err != nil {
			return err
		}
		return runMeasuredMacro()
	default:
		return fmt.Errorf("unknown experiment %q", what)
	}
	return nil
}

// printElastic runs the §5 elastic-scaling extension experiment: a fixed
// 4-pair fleet vs the autoscale controller over a diurnal load trace.
func printElastic(opts sim.RunOptions) {
	fmt.Println("\n=== elastic scaling (§5 extension) — fixed 4-pair fleet vs controller ===")
	fixed, elastic := sim.RunElastic(4, sim.ElasticTrace(), opts)
	for _, res := range []sim.ElasticResult{fixed, elastic} {
		fmt.Printf("-- %s policy (cost %.0f pair·s, worst median %v) --\n",
			res.Policy, res.PairSeconds, res.WorstMedian().Round(time.Millisecond))
		for _, seg := range res.Segments {
			fmt.Printf("%5d RPS × %d pairs  %s\n", seg.RPS, seg.Pairs, seg.Candle)
		}
	}
}

// csvOut, when non-empty, receives one CSV file per figure for plotting.
var csvOut string

// outPath, when non-empty, is where scenarios write BENCH_<scenario>.json
// snapshots: used verbatim when it names a .json file, otherwise treated
// as a directory receiving BENCH_<scenario>.json per scenario.
var outPath string

// faultDelay, when non-zero, arms a latency fault on the LRS during the
// batch scenario to manufacture a p99 regression for `compare` to catch.
var faultDelay time.Duration

// benchOutPath resolves the snapshot path for one scenario, creating the
// directory when needed. Empty when -out was not given.
func benchOutPath(scenario string) string {
	if outPath == "" {
		return ""
	}
	if strings.HasSuffix(outPath, ".json") {
		return outPath
	}
	if err := os.MkdirAll(outPath, 0o755); err != nil {
		obslog.New(os.Stderr, "pprox-bench", nil).Error("bench out dir", "error", err.Error())
		return ""
	}
	return filepath.Join(outPath, "BENCH_"+scenario+".json")
}

func printFigure(title string, rows []sim.Row) {
	fmt.Printf("\n=== %s ===\n", title)
	fmt.Printf("%-6s %5s  %s\n", "config", "RPS", "round-trip latency (box = P25/median/P75, whiskers = 1.5·IQR)")
	last := ""
	for _, r := range rows {
		if r.Config != last {
			if last != "" {
				fmt.Println()
			}
			last = r.Config
		}
		fmt.Printf("%-6s %5d  %s\n", r.Config, r.RPS, r.Candle)
	}
	if csvOut != "" && len(rows) > 0 {
		if err := writeCSV(csvOut, rows); err != nil {
			obslog.New(os.Stderr, "pprox-bench", nil).Error("csv write failed", "error", err.Error())
		}
	}
}

// writeCSV emits the rows as fig<N>.csv with millisecond columns matching
// the candlestick definition of footnote 7.
func writeCSV(dir string, rows []sim.Row) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "fig"+rows[0].Figure+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"config", "rps", "n", "whisker_low_ms", "p25_ms", "median_ms", "p75_ms", "whisker_high_ms", "max_ms"}); err != nil {
		return err
	}
	msCol := func(d time.Duration) string {
		return strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 3, 64)
	}
	for _, r := range rows {
		c := r.Candle
		rec := []string{
			r.Config,
			strconv.Itoa(r.RPS),
			strconv.Itoa(c.N),
			msCol(c.WLow), msCol(c.P25), msCol(c.Median), msCol(c.P75), msCol(c.WHigh), msCol(c.Max),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	fmt.Printf("(csv written to %s)\n", path)
	return nil
}
