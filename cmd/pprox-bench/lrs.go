package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"pprox/internal/audit"
	"pprox/internal/cluster"
	"pprox/internal/lrs/cco"
	"pprox/internal/lrs/engine"
	"pprox/internal/perfslo"
	"pprox/internal/proxy"
	"pprox/internal/sim"
	"pprox/internal/stats"
	"pprox/internal/workload"
)

// lrs.go is the lrs10x scenario: the LRS rebuilt as a sharded, WAL-backed
// event log with incremental CCO maintenance, driven at 10× the paper's
// MovieLens cardinalities (§8: 7,288 users × 17,141 movies becomes 72,880
// × 171,410 — the pseudonym space a rotation-scale re-pseudonymization has
// to traverse). The event count is capped well below the full 5.6M-rating
// 10× stream so the scenario fits CI; cardinality, not volume, is what the
// sharded store and incremental trainer are being sized against. Gates:
//
//   - freshness economics: the mean per-event incremental apply must be
//     ≥ lrsMinSpeedup× cheaper than one full TrainNow over the same log —
//     the number that justifies folding events in online instead of
//     re-running the batch job per epoch;
//   - exactness: the incrementally maintained model must recommend
//     byte-for-byte what the batch-trained twin does after Refresh;
//   - durability: a WAL shard torn mid-append (a crash's signature)
//     must replay to the twin's exact state;
//   - the full private path (UA → shuffle → IA → sharded LRS) must carry
//     a post+get workload with a clean privacy-SLO audit.
//
// With -out it emits BENCH_lrs10x.json carrying the speedup alongside
// goodput/latency, which `pprox-bench compare -min-incremental-speedup`
// gates in the CI perf-trajectory job.

// lrsMinSpeedup is the per-event apply vs full-train advantage gate.
const lrsMinSpeedup = 10

// lrsBenchShards is the consistent-hash ring width the scenario runs.
const lrsBenchShards = 8

// lrs10xTrainer mirrors a production Universal Recommender downsampling
// config at a scale where per-event window evictions and correlator caps
// are constantly exercised.
func lrs10xTrainer() cco.Config {
	return cco.Config{MaxInteractionsPerUser: 20, MaxCorrelatorsPerItem: 30}
}

func runLRS10xScenario(opts sim.RunOptions) error {
	fmt.Println("\n=== lrs10x — sharded WAL-backed LRS, incremental CCO, 10× MovieLens cardinality ===")

	params := workload.ScaledMovieLensParams(10)
	events := 60000
	epochs, trials := 20, 3
	if opts.Repetitions <= 1 { // -quick
		events = 20000
		epochs, trials = 10, 2
	}
	params.Events = events
	data := workload.Generate(params)
	fmt.Printf("workload: %d users × %d items, %d events (volume capped for CI; the full 10× stream is %d)\n",
		params.Users, params.Items, events, 10*workload.MovieLensEvents)

	walDir, err := os.MkdirTemp("", "pprox-lrs10x-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(walDir)

	incCfg := engine.DefaultConfig()
	incCfg.Trainer = lrs10xTrainer()
	incCfg.Shards = lrsBenchShards
	incCfg.WALDir = walDir
	incCfg.Incremental = true
	inc, err := engine.Open(incCfg)
	if err != nil {
		return fmt.Errorf("lrs10x: open incremental engine: %w", err)
	}
	batchCfg := incCfg
	batchCfg.WALDir = ""
	batchCfg.Incremental = false
	batch, err := engine.Open(batchCfg)
	if err != nil {
		return fmt.Errorf("lrs10x: open batch twin: %w", err)
	}
	defer batch.Close()

	for _, ev := range data.Events {
		inc.InsertEvent(ev.User, ev.Item, ev.Rating)
		batch.InsertEvent(ev.User, ev.Item, ev.Rating)
	}
	if got := inc.EventsApplied(); got != uint64(events) {
		return fmt.Errorf("lrs10x: %d of %d events applied incrementally", got, events)
	}
	meanApply := inc.ApplySeconds() / float64(events)
	if err := batch.TrainNow(); err != nil {
		return fmt.Errorf("lrs10x: batch train: %w", err)
	}
	trainSec := batch.TrainSeconds()
	speedup := trainSec / meanApply
	fmt.Printf("freshness economics: mean per-event apply %v, one full TrainNow %v — apply is ×%.0f cheaper\n",
		time.Duration(meanApply*float64(time.Second)).Round(time.Microsecond),
		time.Duration(trainSec*float64(time.Second)).Round(time.Millisecond), speedup)
	if speedup < lrsMinSpeedup {
		return fmt.Errorf("lrs10x: per-event apply only ×%.1f cheaper than a full train, want ≥ ×%d",
			speedup, lrsMinSpeedup)
	}

	// Exactness: the online model, after re-scoring rows whose counts
	// never changed (Refresh), recommends exactly what the batch job
	// computes from the same log.
	inc.Refresh()
	users := data.DistinctUsers()
	stride := len(users)/200 + 1
	checked := 0
	for i := 0; i < len(users); i += stride {
		u := users[i]
		if got, want := inc.Recommend(u, 10), batch.Recommend(u, 10); !reflect.DeepEqual(got, want) {
			return fmt.Errorf("lrs10x: user %s: incremental %v, batch %v", u, got, want)
		}
		checked++
	}
	fmt.Printf("exactness: incremental model == batch model for %d sampled users\n", checked)

	// Durability at scale: tear one shard's WAL tail the way a crash
	// mid-append does, reopen, and require the replayed engine to match
	// the uncrashed twin exactly.
	if err := inc.Close(); err != nil {
		return fmt.Errorf("lrs10x: close before crash: %w", err)
	}
	torn := filepath.Join(walDir, "shard-003.wal")
	f, err := os.OpenFile(torn, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("lrs10x: tear WAL: %w", err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		f.Close()
		return fmt.Errorf("lrs10x: tear WAL: %w", err)
	}
	f.Close()
	reopened, err := engine.Open(incCfg)
	if err != nil {
		return fmt.Errorf("lrs10x: reopen after crash: %w", err)
	}
	defer reopened.Close()
	if reopened.EventCount() != events {
		return fmt.Errorf("lrs10x: replay recovered %d of %d events", reopened.EventCount(), events)
	}
	for i := 0; i < len(users); i += 4 * stride {
		u := users[i]
		if got, want := reopened.Recommend(u, 10), batch.Recommend(u, 10); !reflect.DeepEqual(got, want) {
			return fmt.Errorf("lrs10x: post-crash user %s: %v, twin %v", u, got, want)
		}
	}
	fmt.Printf("durability: torn WAL tail truncated on reopen, all %d events replayed, model matches the twin\n", events)

	// Full private path: the sharded incremental engine behind the real
	// UA → shuffle → IA pipeline, posts and gets in full-epoch lock step
	// so the privacy auditor sees complete anonymity sets.
	const s = 16
	names := make([]string, 0, trials)
	var best lrsTrial
	var rps []float64
	for trial := 0; trial < trials; trial++ {
		tr, err := driveLRS10xTrial(data, s, epochs)
		if err != nil {
			return fmt.Errorf("lrs10x trial %d: %w", trial, err)
		}
		rps = append(rps, tr.throughput())
		if best.sent == 0 || tr.throughput() > best.throughput() {
			best = tr
		}
		if tr.failed > 0 {
			return fmt.Errorf("lrs10x: trial %d had %d failed requests", trial, tr.failed)
		}
		if tr.state != audit.StateOK {
			return fmt.Errorf("lrs10x: trial %d privacy-SLO state is %v, want ok", trial, tr.state)
		}
		names = append(names, fmt.Sprintf("%.0f", tr.throughput()))
	}
	fmt.Printf("full path: %d posts+gets per trial, best %6.0f req/s (trials: %v req/s), audit ok  %s\n",
		best.sent, best.throughput(), names, best.lat.Candlestick())

	if path := benchOutPath("lrs10x"); path != "" {
		rep := newBenchReport("lrs10x")
		rep.Config["users"] = params.Users
		rep.Config["items"] = params.Items
		rep.Config["events"] = events
		rep.Config["shards"] = lrsBenchShards
		rep.Config["shuffle_s"] = s
		rep.Config["epochs"] = epochs
		rep.Config["trials"] = trials
		rep.Config["incremental"] = true
		rep.IncrementalSpeedup = &speedup
		rep.GoodputTrials = newTrialStats(rps)
		rep.GoodputRPS = rep.GoodputTrials.BestRPS
		rep.Latency = latencyQuantiles(best.lat)
		rep.Stages = stageQuantiles(best.stages)
		rep.AuditState = best.state.String()
		rep.PerfSLOState = best.perfState.String()
		if err := rep.write(path); err != nil {
			return err
		}
	}
	return nil
}

// lrsTrial is one measured drive of the full-path slice.
type lrsTrial struct {
	lat       stats.Distribution
	sent      int
	failed    int
	elapsed   time.Duration
	state     audit.State
	perfState perfslo.State
	stages    map[string]map[string]*stageDist
}

func (t lrsTrial) throughput() float64 {
	return float64(t.sent) / t.elapsed.Seconds()
}

// driveLRS10xTrial deploys the shipped proxy pipeline over a sharded
// incremental LRS and pushes epochs of S concurrent posts, then epochs of
// S concurrent gets for the same users, through it.
func driveLRS10xTrial(data *workload.Dataset, s, epochs int) (lrsTrial, error) {
	engCfg := engine.DefaultConfig()
	engCfg.Trainer = lrs10xTrainer()
	spec := cluster.Spec{
		ProxyEnabled: true, UA: 1, IA: 1,
		Encryption: true, ItemPseudonyms: true,
		Shuffle: s, ShuffleTimeout: 200 * time.Millisecond,
		LRSFrontends:   1,
		EngineConfig:   &engCfg,
		LRSShards:      4,
		LRSIncremental: true,
		Audit:          &audit.Config{},
		Batch:          true,
		Hopwire:        true,
		PerfSLO:        &perfslo.Config{},
		// Looser than benchPerfThresholds: the forward stage carries a
		// real engine doing WAL-ordered inserts and online CCO folds, not
		// a fixed-delay stub.
		PerfThresholds: map[string]float64{
			proxy.StageServe:        10,
			proxy.StageShuffleWait:  5,
			proxy.StageEcallDecrypt: 2,
			proxy.StageForward:      10,
		},
		EcallCost: 100 * time.Microsecond,
	}
	d, err := cluster.Deploy(spec)
	if err != nil {
		return lrsTrial{}, fmt.Errorf("deploy: %w", err)
	}
	defer d.Close()

	cl := d.Client(10 * time.Second)
	rec := stats.NewRecorder(2 * epochs * s)
	var failed atomic.Uint64
	ctx := context.Background()
	var elapsed time.Duration
	before, after, err := bracketScrape(d, func() {
		start := time.Now()
		for b := 0; b < epochs; b++ {
			var wg sync.WaitGroup
			for i := 0; i < s; i++ {
				wg.Add(1)
				go func(b, i int) {
					defer wg.Done()
					ev := data.Events[(b*s+i)%len(data.Events)]
					t0 := time.Now()
					if err := cl.Post(ctx, ev.User, ev.Item, ev.Rating); err != nil {
						failed.Add(1)
						return
					}
					rec.Observe(time.Since(t0))
				}(b, i)
			}
			wg.Wait()
		}
		for b := 0; b < epochs; b++ {
			var wg sync.WaitGroup
			for i := 0; i < s; i++ {
				wg.Add(1)
				go func(b, i int) {
					defer wg.Done()
					ev := data.Events[(b*s+i)%len(data.Events)]
					t0 := time.Now()
					if _, err := cl.Get(ctx, ev.User); err != nil {
						failed.Add(1)
						return
					}
					rec.Observe(time.Since(t0))
				}(b, i)
			}
			wg.Wait()
		}
		elapsed = time.Since(start)
	})
	if err != nil {
		return lrsTrial{}, err
	}
	return lrsTrial{
		lat: rec.Snapshot(), sent: 2 * epochs * s,
		failed: int(failed.Load()), elapsed: elapsed,
		state:     d.Auditor.State(),
		perfState: d.PerfSLO.State(),
		stages:    stageBreakdown(before, after),
	}, nil
}
