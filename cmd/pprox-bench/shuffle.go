package main

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pprox/internal/proxy"
)

// interleaveRng drives the cross-instance interleaving model; seeded for
// reproducible experiment output.
var interleaveRng = rand.New(rand.NewSource(42))

// runShuffleExperiment measures the adversary's linking probability
// against the real shuffler implementation and compares it with the §6.2
// analysis: 1/S with one instance per layer, 1/(S·I) with I instances in
// the observed layer.
func runShuffleExperiment() error {
	fmt.Println("\n=== §6.2 — adversary linking probability under shuffling ===")
	fmt.Printf("%-4s %-4s %10s %10s  %s\n", "S", "I", "measured", "theory", "batches")

	const batches = 300
	for _, s := range []int{2, 5, 10, 20} {
		for _, instances := range []int{1, 2, 4} {
			acc, err := measureLinkingProbability(s, instances, batches)
			if err != nil {
				return err
			}
			fmt.Printf("%-4d %-4d %10.4f %10.4f  %d\n", s, instances, acc, 1.0/float64(s*instances), batches)
		}
	}
	fmt.Println("(measured = in-order timing attack accuracy against real Shuffler batches)")
	return nil
}

// measureLinkingProbability drives full batches through I real shufflers
// of size S and scores the in-order correlation attack on the merged
// egress stream.
func measureLinkingProbability(s, instances, batches int) (float64, error) {
	correct, total := 0, 0
	for b := 0; b < batches; b++ {
		shufflers := make([]*proxy.Shuffler, instances)
		for i := range shufflers {
			shufflers[i] = proxy.NewShuffler(s, time.Minute, 0)
		}

		n := s * instances
		// positions[k] = (instance, within-batch release position) of
		// the k-th arriving message; arrivals round-robin across
		// instances as a balancer would spread them.
		type released struct{ instance, pos int }
		results := make([]released, n)
		var wg sync.WaitGroup
		for k := 0; k < n; k++ {
			inst := k % instances
			wg.Add(1)
			go func(k, inst int) {
				defer wg.Done()
				pos, err := shufflers[inst].Wait(context.Background())
				if err != nil {
					pos = -1
				}
				results[k] = released{instance: inst, pos: pos}
			}(k, inst)
		}
		wg.Wait()
		for i := range shufflers {
			shufflers[i].Close()
		}

		// The adversary sees one merged egress stream. All instances
		// flush at the same instant and their packets are
		// indistinguishable (constant size, encrypted), so the
		// interleaving across instances at each release step carries no
		// information — model it as a random permutation of the
		// instances per step. Egress rank of message k:
		// pos(k)·I + (k's instance's slot in that step's interleave).
		// Each release step p carries one message per instance; draw the
		// step's interleave once.
		slotOf := make([][]int, s) // slotOf[p][instance] = slot in step p
		for p := 0; p < s; p++ {
			slotOf[p] = make([]int, instances)
			for slot, inst := range interleaveRng.Perm(instances) {
				slotOf[p][inst] = slot
			}
		}
		for k := 0; k < n; k++ {
			r := results[k]
			if r.pos < 0 {
				return 0, fmt.Errorf("shuffler shed a message (S=%d I=%d)", s, instances)
			}
			egressRank := r.pos*instances + slotOf[r.pos][r.instance]
			if egressRank == k {
				correct++
			}
			total++
		}
	}
	return float64(correct) / float64(total), nil
}
