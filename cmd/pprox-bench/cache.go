package main

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pprox/internal/audit"
	"pprox/internal/cluster"
	"pprox/internal/perfslo"
	"pprox/internal/sim"
	"pprox/internal/stats"
	"pprox/internal/workload"
)

// cache.go measures what the in-enclave recommendation cache buys under a
// Zipf-skewed GET workload (the shape of the MovieLens slice): the same
// request stream runs against the encrypted stub stack with the cache off
// and on, and the scenario reports end-to-end candlesticks, the LRS GET
// load, and the cache's own hit/miss/eviction/coalesce counters. It
// doubles as the CI smoke test: a zero hit rate, a cache that does not
// shed LRS load, or an unhappy privacy auditor is a hard error. With
// -out it also emits the BENCH_cache.json snapshot (report.go) tracked
// by the CI perf-trajectory job.

// cacheVariant is one measured half of the comparison.
type cacheVariant struct {
	name      string
	lat       stats.Distribution
	sent      int
	failed    int
	lrsGets   uint64
	elapsed   time.Duration
	state     audit.State
	perfState perfslo.State
	hitRate   float64
	stages    map[string]map[string]*stageDist
}

func runCacheScenario(opts sim.RunOptions) error {
	fmt.Println("\n=== cache — in-enclave recommendation cache, Zipf gets (stub LRS) ===")

	const s = 8
	batches := 120
	if opts.Repetitions <= 1 { // -quick
		batches = 40
	}
	// The GET stream replays the event stream's user column: per-user
	// request frequency follows the dataset's Zipf(1.2) activity skew,
	// so a small head of hot users dominates — the regime a
	// recommendation cache exists for.
	dataset := workload.Generate(workload.ScaledMovieLensParams(0.01))

	variants := make([]cacheVariant, 0, 2)
	for _, v := range []struct {
		name  string
		cache bool
	}{
		{"cache-off", false},
		{"cache-on", true},
	} {
		spec := cluster.Spec{
			ProxyEnabled: true, UA: 1, IA: 1,
			Encryption: true, ItemPseudonyms: true,
			Shuffle: s, ShuffleTimeout: 200 * time.Millisecond,
			UseStub: true, StubDelay: 10 * time.Millisecond,
			LRSFrontends:   1,
			Audit:          &audit.Config{},
			PerfSLO:        &perfslo.Config{},
			PerfThresholds: benchPerfThresholds(),
			Cache:          v.cache, CacheTTL: time.Minute,
		}
		d, err := cluster.Deploy(spec)
		if err != nil {
			return fmt.Errorf("deploy %s: %w", v.name, err)
		}

		// Exact batches of S concurrent gets keep every shuffle epoch
		// fully occupied, so the SLO auditor measures the cache's effect
		// in the regime where the 1/S bound actually holds. Duplicate
		// hot users inside one batch exercise coalescing.
		cl := d.Client(10 * time.Second)
		rec := stats.NewRecorder(batches * s)
		var next, failed atomic.Uint64
		ctx := context.Background()
		var elapsed time.Duration
		before, after, err := bracketScrape(d, func() {
			start := time.Now()
			defer func() { elapsed = time.Since(start) }()
			for b := 0; b < batches; b++ {
				var wg sync.WaitGroup
				for i := 0; i < s; i++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						ev := dataset.Events[int(next.Add(1))%len(dataset.Events)]
						t0 := time.Now()
						if _, err := cl.Get(ctx, ev.User); err != nil {
							failed.Add(1)
							return
						}
						rec.Observe(time.Since(t0))
					}()
				}
				wg.Wait()
			}
		})
		if err != nil {
			d.Close()
			return err
		}

		_, gets := d.Stub.Counts()
		variant := cacheVariant{
			name: v.name, lat: rec.Snapshot(),
			sent: batches * s, failed: int(failed.Load()),
			lrsGets: gets, elapsed: elapsed,
			state:     d.Auditor.State(),
			perfState: d.PerfSLO.State(),
			stages:    stageBreakdown(before, after),
		}
		if v.cache {
			st := d.RecCaches[0].Stats()
			variant.hitRate = st.HitRate()
			fmt.Printf("%-10s sent=%d failed=%d lrs-gets=%d hit-rate=%4.1f%%  %s\n",
				v.name, batches*s, failed.Load(), gets, 100*st.HitRate(), rec.Snapshot().Candlestick())
			fmt.Printf("  cache: hits=%d misses=%d coalesced=%d evictions(lru=%d ttl=%d) invalidations=%d entries=%d pages=%d\n",
				st.Hits, st.Misses, st.Coalesced, st.EvictionsLRU, st.EvictionsTTL,
				st.Invalidations, st.Entries, st.Pages)
			if st.HitRate() <= 0 {
				d.Close()
				return fmt.Errorf("cache scenario: hit rate is zero under a Zipf workload")
			}
		} else {
			fmt.Printf("%-10s sent=%d failed=%d lrs-gets=%d hit-rate=   —  %s\n",
				v.name, batches*s, failed.Load(), gets, rec.Snapshot().Candlestick())
		}
		variants = append(variants, variant)
		if err := d.Close(); err != nil {
			return err
		}
	}

	off, on := variants[0], variants[1]
	for _, v := range variants {
		if v.state != audit.StateOK {
			return fmt.Errorf("cache scenario: %s privacy-SLO state is %v, want ok", v.name, v.state)
		}
		if v.failed > 0 {
			return fmt.Errorf("cache scenario: %s had %d failed requests", v.name, v.failed)
		}
	}
	// The point of the cache: hits never reach the LRS. With a hot Zipf
	// head the cached run must issue measurably fewer LRS GETs per
	// request served.
	offRate := float64(off.lrsGets) / float64(off.sent)
	onRate := float64(on.lrsGets) / float64(on.sent)
	fmt.Printf("lrs gets per request: cache-off %.2f, cache-on %.2f  (p50 %v → %v)\n",
		offRate, onRate,
		off.lat.Median().Round(time.Millisecond),
		on.lat.Median().Round(time.Millisecond))
	if onRate >= offRate {
		return fmt.Errorf("cache scenario: LRS load did not drop (%.2f → %.2f gets/request)", offRate, onRate)
	}
	fmt.Println("(privacy-SLO auditor: ok on both variants — hits re-enter the shuffler)")

	if path := benchOutPath("cache"); path != "" {
		allocs, err := runAllocBenchmarks()
		if err != nil {
			return fmt.Errorf("alloc benchmarks: %w", err)
		}
		rep := buildCacheReport(s, batches, on, onRate, allocs)
		if err := rep.write(path); err != nil {
			return err
		}
	}
	return nil
}

// buildCacheReport assembles the BENCH_cache.json snapshot from the
// cache-on variant — the shipped configuration, whose LRS offload and
// hit rate are the host-independent measures compare tracks. The single
// pass yields a one-trial spread (min = median = max), which compare
// treats as perfectly quiet; the cache gate's strength is its rate
// checks, not its timings.
func buildCacheReport(s, batches int, on cacheVariant, onRate float64, allocs map[string]AllocStat) BenchReport {
	rep := newBenchReport("cache")
	rep.Config["shuffle_s"] = s
	rep.Config["batches"] = batches
	rep.Config["cache"] = true
	rep.Config["cache_ttl_s"] = 60
	rep.GoodputTrials = newTrialStats([]float64{float64(on.sent) / on.elapsed.Seconds()})
	rep.GoodputRPS = rep.GoodputTrials.BestRPS
	rep.Latency = latencyQuantiles(on.lat)
	rep.Stages = stageQuantiles(on.stages)
	rep.LRSGetsPerRequest = &onRate
	hr := on.hitRate
	rep.CacheHitRate = &hr
	rep.AuditState = on.state.String()
	rep.PerfSLOState = on.perfState.String()
	rep.AllocsPerOp = allocs
	return rep
}
