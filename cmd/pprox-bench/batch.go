package main

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pprox/internal/audit"
	"pprox/internal/cluster"
	"pprox/internal/faults"
	"pprox/internal/perfslo"
	"pprox/internal/proxy"
	"pprox/internal/sim"
	"pprox/internal/stats"
)

// batch.go measures what the epoch-batched hop pipeline buys: the same
// epoch-aligned GET workload runs against the encrypted stub stack with
// batching off and on, and the scenario reports throughput, end-to-end
// candlesticks, and the UA's enclave crossings per request. It doubles as
// the CI smoke test: batching that fails to collapse crossings to ~1 per
// epoch, that loses throughput, or that upsets the privacy auditor is a
// hard error. With -out it also emits the BENCH_batch.json snapshot
// (report.go) that the CI perf-trajectory job compares against its
// committed baseline; with -inject-fault it drives the same workload
// through a latency fault on the LRS to manufacture the p99 regression
// that `pprox-bench compare` must catch.

// benchPerfThresholds are the per-stage latency objectives the bench
// deployments run under. Deliberately generous: the batched pipeline
// performs a whole epoch's cryptography per ECALL, and -race CI hosts
// stretch everything; the objectives exist so BENCH_*.json carries a
// real perfslo verdict, not to gate goodput (compare does that).
func benchPerfThresholds() map[string]float64 {
	return map[string]float64{
		proxy.StageServe:        5,
		proxy.StageShuffleWait:  2,
		proxy.StageEcallDecrypt: 1,
		proxy.StageForward:      2,
	}
}

// batchTrial is one measured drive of one variant.
type batchTrial struct {
	lat        stats.Distribution
	sent       int
	failed     int
	elapsed    time.Duration
	crossings  uint64 // UA enclave ECALLs (transition crossings)
	messages   uint64 // messages carried by those crossings
	state      audit.State
	perfState  perfslo.State
	ladderUsed bool
	stages     map[string]map[string]*stageDist
}

func (t batchTrial) throughput() float64 {
	return float64(t.sent) / t.elapsed.Seconds()
}

// driveBatchTrial deploys one variant, pushes epochs of S concurrent
// gets through it in lock step (every shuffle flush is a full anonymity
// set, so the crossings ratio measures the pipeline, not timer-flush
// stragglers, and the auditor sees only full epochs), and tears it down.
// A non-zero faultDelay arms a latency fault on the LRS for the whole
// trial — the knob that manufactures a measurable p99 regression.
func driveBatchTrial(batch bool, s, epochs int, faultDelay time.Duration) (batchTrial, error) {
	spec := cluster.Spec{
		ProxyEnabled: true, UA: 1, IA: 1,
		Encryption: true, ItemPseudonyms: true,
		Shuffle: s, ShuffleTimeout: 200 * time.Millisecond,
		UseStub: true, StubDelay: 2 * time.Millisecond,
		LRSFrontends: 1,
		Audit:        &audit.Config{},
		Batch:        batch,
		// The shipped transport: binary frames on persistent connections
		// for both hops (DESIGN.md §4h). Both variants run it so the
		// off/on contrast still isolates the batching pipeline.
		Hopwire: true,
		PerfSLO: &perfslo.Config{},
		// See benchPerfThresholds: the default cluster objectives assume
		// per-message ECALLs and would page on a healthy batched epoch.
		PerfThresholds: benchPerfThresholds(),
		// Model the SGX world switch the batched pipeline amortizes:
		// ~10µs of pure transition plus TLB/cache repopulation, at the
		// EPC-paging-pressure end of what the paper's SGX v1 hardware
		// pays per crossing. Without it a crossing is a free function
		// call and the comparison measures only scheduler noise.
		EcallCost: 100 * time.Microsecond,
	}
	if faultDelay > 0 {
		inj := faults.NewInjector(1, faults.Rule{Kind: faults.KindLatency, Delay: faultDelay})
		defer inj.Close()
		spec.NodeMiddleware = func(addr string, h http.Handler) http.Handler {
			if strings.HasPrefix(addr, "lrs") {
				return inj.Middleware(h)
			}
			return h
		}
	}
	d, err := cluster.Deploy(spec)
	if err != nil {
		return batchTrial{}, fmt.Errorf("deploy: %w", err)
	}
	defer d.Close()

	ua := d.UALayers[0]
	ecallsBefore := ua.Enclave().EcallCount()
	msgsBefore := ua.Enclave().MessageCount()
	cl := d.Client(10 * time.Second)
	rec := stats.NewRecorder(epochs * s)
	var failed atomic.Uint64
	ctx := context.Background()
	var elapsed time.Duration
	before, after, err := bracketScrape(d, func() {
		start := time.Now()
		for b := 0; b < epochs; b++ {
			var wg sync.WaitGroup
			for i := 0; i < s; i++ {
				wg.Add(1)
				go func(b, i int) {
					defer wg.Done()
					t0 := time.Now()
					if _, err := cl.Get(ctx, fmt.Sprintf("user-%d-%d", b, i)); err != nil {
						failed.Add(1)
						return
					}
					rec.Observe(time.Since(t0))
				}(b, i)
			}
			wg.Wait()
		}
		elapsed = time.Since(start)
	})
	if err != nil {
		return batchTrial{}, err
	}

	bs := ua.BatchStats()
	return batchTrial{
		lat: rec.Snapshot(), sent: epochs * s,
		failed: int(failed.Load()), elapsed: elapsed,
		crossings: ua.Enclave().EcallCount() - ecallsBefore,
		messages:  ua.Enclave().MessageCount() - msgsBefore,
		state:     d.Auditor.State(),
		perfState: d.PerfSLO.State(),
		ladderUsed: bs.Retries > 0 || bs.Splits > 0 ||
			bs.Degraded > 0,
		stages: stageBreakdown(before, after),
	}, nil
}

func runBatchScenario(opts sim.RunOptions) error {
	fmt.Println("\n=== batch — epoch-batched hop pipeline vs per-message (stub LRS) ===")

	const s = 32
	epochs := 40
	trials := 3
	if opts.Repetitions <= 1 { // -quick
		epochs = 15
	}
	if faultDelay > 0 {
		// A faulted run exists to produce a degraded BENCH_batch.json,
		// not a capacity measurement; keep it short.
		epochs = 10
		trials = 2
		fmt.Printf("(fault injection: +%v latency on every LRS response — gates disabled)\n", faultDelay)
	}

	// Alternate off/on trials and score each variant by its best run:
	// on a shared, single-tenant-hostile CI box the noise sources (GC
	// pauses, scheduler stalls, a shuffle-timer flush) are one-sided —
	// they only ever slow a run down — so best-of-N recovers the clean
	// capacity of each pipeline while every individual run still has to
	// pass the correctness, audit, and crossing checks. All trials are
	// kept so the JSON snapshot reports the spread (min/median/max), which
	// is what lets `compare` reject a noisy run instead of gating on it.
	names := [2]string{"batch-off", "batch-on"}
	var best [2]batchTrial
	var rps [2][]float64
	for trial := 0; trial < trials; trial++ {
		for v := 0; v < 2; v++ {
			tr, err := driveBatchTrial(v == 1, s, epochs, faultDelay)
			if err != nil {
				return fmt.Errorf("batch scenario %s: %w", names[v], err)
			}
			rps[v] = append(rps[v], tr.throughput())
			if best[v].sent == 0 || tr.throughput() > best[v].throughput() {
				best[v] = tr
			}
			if faultDelay > 0 {
				continue // degraded by design; gates would only re-state that
			}
			if tr.failed > 0 {
				return fmt.Errorf("batch scenario: %s had %d failed requests", names[v], tr.failed)
			}
			if tr.state != audit.StateOK {
				return fmt.Errorf("batch scenario: %s privacy-SLO state is %v, want ok", names[v], tr.state)
			}
			if v == 1 && tr.ladderUsed {
				return fmt.Errorf("batch scenario: healthy run descended the degradation ladder")
			}
			if ratio := float64(tr.crossings) / float64(tr.sent); v == 1 {
				// The point of batching: the whole epoch crosses the
				// boundary together. One crossing per epoch of S for a
				// single-kind workload; allow a second (a timer-split
				// epoch) plus slack.
				if bound := 2.0/float64(s) + 0.05; ratio > bound {
					return fmt.Errorf("batch scenario: %.3f UA crossings/request, want ≤ %.3f", ratio, bound)
				}
			} else if ratio < 1 {
				return fmt.Errorf("batch scenario: per-message baseline did %.3f crossings/request, expected ≥ 1", ratio)
			}
		}
	}

	for v, tr := range best {
		fmt.Printf("%-10s sent=%d×%d  best %6.0f req/s  ua-crossings/req=%.3f  %s\n",
			names[v], tr.sent, trials, tr.throughput(),
			float64(tr.crossings)/float64(tr.sent), tr.lat.Candlestick())
	}
	off, on := best[0], best[1]
	fmt.Printf("throughput (best of %d): batch-off %.0f req/s, batch-on %.0f req/s (%+.1f%%); crossings/req %.3f → %.3f\n",
		trials, off.throughput(), on.throughput(),
		100*(on.throughput()-off.throughput())/off.throughput(),
		float64(off.crossings)/float64(off.sent),
		float64(on.crossings)/float64(on.sent))
	if faultDelay == 0 && on.throughput() <= off.throughput() {
		return fmt.Errorf("batch scenario: batching lost throughput (%.0f → %.0f req/s)",
			off.throughput(), on.throughput())
	}
	if faultDelay == 0 {
		fmt.Println("(privacy-SLO auditor: ok on every trial — the epoch leaves in permuted order)")
	}

	if path := benchOutPath("batch"); path != "" {
		allocs, err := runAllocBenchmarks()
		if err != nil {
			return fmt.Errorf("alloc benchmarks: %w", err)
		}
		rep := buildBatchReport(s, epochs, trials, rps[1], on, faultDelay, allocs)
		if err := rep.write(path); err != nil {
			return err
		}
	}
	return nil
}

// buildBatchReport assembles the BENCH_batch.json snapshot from the
// batch-on variant: the batched pipeline is the shipped configuration,
// so its trajectory is the one CI tracks (batch-off exists only as the
// in-run contrast).
func buildBatchReport(s, epochs, trials int, onRPS []float64, on batchTrial, faultDelay time.Duration, allocs map[string]AllocStat) BenchReport {
	rep := newBenchReport("batch")
	rep.Config["shuffle_s"] = s
	rep.Config["epochs"] = epochs
	rep.Config["trials"] = trials
	rep.Config["batch"] = true
	rep.Config["hopwire"] = true
	rep.Config["ecall_cost_us"] = 100
	rep.GoodputTrials = newTrialStats(onRPS)
	rep.GoodputRPS = rep.GoodputTrials.BestRPS
	rep.Latency = latencyQuantiles(on.lat)
	rep.Stages = stageQuantiles(on.stages)
	rep.UACrossingsPerRequest = float64(on.crossings) / float64(on.sent)
	rep.AuditState = on.state.String()
	rep.PerfSLOState = on.perfState.String()
	rep.FaultInjected = faultDelay > 0
	rep.AllocsPerOp = allocs
	return rep
}
