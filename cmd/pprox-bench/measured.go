package main

import (
	"context"
	"fmt"
	"time"

	"pprox/internal/cluster"
	"pprox/internal/workload"
)

// microByName finds a Table 2 row.
func microByName(name string) (cluster.MicroConfig, bool) {
	for _, c := range cluster.MicroConfigs() {
		if c.Name == name {
			return c, true
		}
	}
	return cluster.MicroConfig{}, false
}

// runMeasuredMacro is the real-plane counterpart of Figures 9–10: it
// deploys the baseline (b-shape, plain client straight to the engine) and
// the full system (f-shape, encrypted through both layers) with the REAL
// Universal-Recommender engine trained on a scaled MovieLens workload,
// and measures get latencies on this host. The paper's observation —
// full-system latency ≈ proxy latency + LRS latency — must hold here too.
func runMeasuredMacro() error {
	fmt.Println("\n=== measured-macro — real engine, baseline vs full system (this host) ===")
	dataset := workload.Generate(workload.ScaledMovieLensParams(0.002))
	users := dataset.DistinctUsers()

	for _, setup := range []struct {
		name string
		spec cluster.Spec
	}{
		{"b1-like (plain → engine)", cluster.Spec{LRSFrontends: 1}},
		{"f1-like (PProx → engine)", cluster.Spec{
			ProxyEnabled: true, UA: 1, IA: 1,
			Encryption: true, ItemPseudonyms: true,
			LRSFrontends: 1,
		}},
	} {
		d, err := cluster.Deploy(setup.spec)
		if err != nil {
			return fmt.Errorf("deploy %s: %w", setup.name, err)
		}
		cl := d.Client(15 * time.Second)
		ctx := context.Background()
		for _, ev := range dataset.Events {
			if err := cl.Post(ctx, ev.User, ev.Item, ev.Rating); err != nil {
				d.Close()
				return fmt.Errorf("%s seed: %w", setup.name, err)
			}
		}
		if err := d.Engine.TrainNow(); err != nil {
			d.Close()
			return err
		}

		i := 0
		inj := &workload.Injector{RPS: 40, Duration: 3 * time.Second, MaxInFlight: 256}
		var res workload.Result
		run := func() {
			res = inj.Run(ctx, func(ctx context.Context) error {
				i++
				_, err := cl.Get(ctx, users[i%len(users)])
				return err
			})
		}
		var before, after scrapeSet
		var scrapeErr error
		if setup.spec.ProxyEnabled {
			before, after, scrapeErr = bracketScrape(d, run)
		} else {
			run()
		}
		fmt.Printf("%-28s sent=%d failed=%d  %s\n", setup.name, res.Sent, res.Failed, res.Latencies.Candlestick())
		if scrapeErr == nil && setup.spec.ProxyEnabled {
			printStageBreakdown(before, after)
			printFaultHandling(before, after)
		}
		if err := d.Close(); err != nil {
			return err
		}
		if scrapeErr != nil {
			return scrapeErr
		}
	}
	fmt.Println("(full-system ≈ baseline + proxy crypto overhead, as §8.2 reports)")
	return nil
}

// runMeasured cross-checks the simulator against the real implementation:
// it deploys selected Table 2 configurations in-process (real
// cryptography, real proxies, stub LRS over the in-memory network) and
// measures round-trip latencies with the open-loop injector. Absolute
// numbers depend on this host, but the ordering m1 < m2/m3 and the
// shuffle penalty of m6 must match Figures 6–7.
func runMeasured() error {
	fmt.Println("\n=== measured — real request path on this host (in-process, stub LRS) ===")
	fmt.Printf("%-6s %5s  %s\n", "config", "RPS", "round-trip latency")

	for _, name := range []string{"m1", "m3", "m6"} {
		cfg, ok := microByName(name)
		if !ok {
			return fmt.Errorf("unknown configuration %s", name)
		}
		spec := cluster.SpecFromMicro(cfg)
		spec.ShuffleTimeout = 200 * time.Millisecond
		d, err := cluster.Deploy(spec)
		if err != nil {
			return fmt.Errorf("deploy %s: %w", name, err)
		}

		cl := d.Client(10 * time.Second)
		inj := &workload.Injector{RPS: 50, Duration: 3 * time.Second, MaxInFlight: 256}
		var res workload.Result
		before, after, scrapeErr := bracketScrape(d, func() {
			res = inj.Run(context.Background(), func(ctx context.Context) error {
				_, err := cl.Get(ctx, "bench-user")
				return err
			})
		})
		if res.Failed > 0 {
			fmt.Printf("%-6s %5d  %d/%d requests failed\n", name, 50, res.Failed, res.Sent)
		} else {
			fmt.Printf("%-6s %5d  %s\n", name, 50, res.Latencies.Candlestick())
		}
		if scrapeErr == nil {
			printStageBreakdown(before, after)
			printFaultHandling(before, after)
		}
		if err := d.Close(); err != nil {
			return fmt.Errorf("close %s: %w", name, err)
		}
		if scrapeErr != nil {
			return scrapeErr
		}
	}
	return nil
}
