package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// healthyReport fabricates a quiet baseline snapshot.
func healthyReport() BenchReport {
	rep := newBenchReport("batch")
	rep.GoodputTrials = newTrialStats([]float64{950, 1000, 1050})
	rep.GoodputRPS = rep.GoodputTrials.BestRPS
	rep.Latency = LatencyQuantiles{P50MS: 10, P95MS: 30, P99MS: 60}
	rep.UACrossingsPerRequest = 0.04
	rep.AllocsPerOp = map[string]AllocStat{
		"crypto_pseudonymize": {NsPerOp: 500, AllocsPerOp: 4, BytesPerOp: 128},
	}
	rep.AuditState = "ok"
	rep.PerfSLOState = "ok"
	return rep
}

func regressionTexts(t *testing.T, old, nu BenchReport) []string {
	t.Helper()
	return compareReports(old, nu, defaultCompareOpts(), os.Stdout)
}

func wantRegression(t *testing.T, regs []string, substr string) {
	t.Helper()
	for _, r := range regs {
		if strings.Contains(r, substr) {
			return
		}
	}
	t.Errorf("no regression mentioning %q in %q", substr, regs)
}

func TestCompareAcceptsEqualReports(t *testing.T) {
	old, nu := healthyReport(), healthyReport()
	if regs := regressionTexts(t, old, nu); len(regs) != 0 {
		t.Fatalf("identical reports flagged: %q", regs)
	}
}

func TestCompareFlagsP99AndGoodputRegression(t *testing.T) {
	old, nu := healthyReport(), healthyReport()
	nu.Latency.P99MS = 400 // old 60: past 2×+50ms slack
	nu.GoodputTrials = newTrialStats([]float64{400, 420, 440})
	regs := regressionTexts(t, old, nu)
	wantRegression(t, regs, "p99")
	wantRegression(t, regs, "goodput")
}

func TestCompareSkipsTimingChecksOnNoisyRun(t *testing.T) {
	old, nu := healthyReport(), healthyReport()
	// Same degraded timings, but the new run's trials disagree wildly:
	// (max-min)/median = 600/500 > 0.35, so timing verdicts are skipped.
	nu.Latency.P99MS = 400
	nu.GoodputTrials = newTrialStats([]float64{200, 500, 800})
	if regs := regressionTexts(t, old, nu); len(regs) != 0 {
		t.Fatalf("noisy run should skip timing checks, got %q", regs)
	}
}

func TestCompareFlagsHostIndependentRegressions(t *testing.T) {
	old, nu := healthyReport(), healthyReport()
	nu.PerfSLOState = "violated"
	nu.UACrossingsPerRequest = 0.5 // batching broke
	nu.AllocsPerOp["crypto_pseudonymize"] = AllocStat{NsPerOp: 500, AllocsPerOp: 9, BytesPerOp: 128}
	regs := regressionTexts(t, old, nu)
	wantRegression(t, regs, "perf SLO")
	wantRegression(t, regs, "crossings")
	wantRegression(t, regs, "allocs/op")
}

func TestCompareFlagsScenarioMismatch(t *testing.T) {
	old, nu := healthyReport(), healthyReport()
	nu.Scenario = "cache"
	wantRegression(t, regressionTexts(t, old, nu), "scenario mismatch")
}

func TestCompareFlagsLRSGetsGrowth(t *testing.T) {
	old, nu := healthyReport(), healthyReport()
	o, n := 0.30, 0.60
	old.LRSGetsPerRequest, nu.LRSGetsPerRequest = &o, &n
	wantRegression(t, regressionTexts(t, old, nu), "LRS gets/request")
}

func TestCompareGatesIncrementalSpeedup(t *testing.T) {
	old, nu := healthyReport(), healthyReport()
	o, n := 300.0, 6.0
	old.IncrementalSpeedup, nu.IncrementalSpeedup = &o, &n
	wantRegression(t, regressionTexts(t, old, nu), "incremental speedup")

	// At or above the floor it passes even when lower than the baseline:
	// the floor is the contract, the baseline is context.
	ok := 12.0
	nu.IncrementalSpeedup = &ok
	if regs := regressionTexts(t, old, nu); len(regs) != 0 {
		t.Fatalf("above-floor speedup flagged: %q", regs)
	}

	// Dropping the measurement entirely is itself a regression.
	nu.IncrementalSpeedup = nil
	wantRegression(t, regressionTexts(t, old, nu), "missing")
}

func TestBenchReportRoundTripAndSchemaCheck(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_batch.json")
	rep := healthyReport()
	if err := rep.write(path); err != nil {
		t.Fatal(err)
	}
	got, err := loadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != benchSchema || got.Scenario != "batch" ||
		got.GoodputTrials.MedianRPS != 1000 || got.Latency.P99MS != 60 {
		t.Fatalf("round trip mangled report: %+v", got)
	}
	if got.GitSHA == "" || got.GoVersion == "" {
		t.Fatalf("build identity missing: sha=%q go=%q", got.GitSHA, got.GoVersion)
	}

	bad := rep
	bad.Schema = "pprox-bench/999"
	badPath := filepath.Join(dir, "bad.json")
	if err := bad.write(badPath); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBenchReport(badPath); err == nil {
		t.Fatal("unknown schema accepted")
	}
}

func TestRunCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	old, nu := healthyReport(), healthyReport()
	if err := old.write(oldPath); err != nil {
		t.Fatal(err)
	}
	if err := nu.write(newPath); err != nil {
		t.Fatal(err)
	}
	if code := runCompare([]string{oldPath, newPath}); code != 0 {
		t.Fatalf("healthy compare exit = %d, want 0", code)
	}

	nu.Latency.P99MS = 1000
	if err := nu.write(newPath); err != nil {
		t.Fatal(err)
	}
	if code := runCompare([]string{oldPath, newPath}); code != 3 {
		t.Fatalf("regressed compare exit = %d, want 3", code)
	}

	if code := runCompare([]string{oldPath}); code != 2 {
		t.Fatalf("missing-arg compare exit = %d, want 2", code)
	}
	if code := runCompare([]string{oldPath, filepath.Join(dir, "nope.json")}); code != 2 {
		t.Fatalf("unreadable-file compare exit = %d, want 2", code)
	}
}

// TestCompareDetectsInjectedLatencyFault is the acceptance drill for the
// perf-trajectory gate: the same batch workload is driven once healthy
// and once through a latency fault on the LRS (the -inject-fault path),
// and compare must flag the induced p99 regression.
func TestCompareDetectsInjectedLatencyFault(t *testing.T) {
	if testing.Short() {
		t.Skip("drives two in-process deployments")
	}
	const s, epochs = 8, 5
	healthy, err := driveBatchTrial(true, s, epochs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if healthy.failed > 0 {
		t.Fatalf("healthy trial had %d failures", healthy.failed)
	}
	faulted, err := driveBatchTrial(true, s, epochs, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if faulted.failed > 0 {
		t.Fatalf("faulted trial had %d failures", faulted.failed)
	}

	allocs := map[string]AllocStat{"crypto_pseudonymize": {AllocsPerOp: 4}}
	base := buildBatchReport(s, epochs, 1, []float64{healthy.throughput()}, healthy, 0, allocs)
	regressed := buildBatchReport(s, epochs, 1, []float64{faulted.throughput()}, faulted, 300*time.Millisecond, allocs)

	regs := compareReports(base, regressed, defaultCompareOpts(), os.Stdout)
	wantRegression(t, regs, "p99")
	wantRegression(t, regs, "inject-fault")
	if !regressed.FaultInjected {
		t.Error("faulted report not marked fault_injected")
	}

	// Sanity on the snapshot itself: per-stage quantiles were scraped
	// and the IA forward stage shows the injected delay.
	fwd, ok := regressed.Stages["ia"]["forward"]
	if !ok {
		t.Fatal("faulted report has no ia/forward stage row")
	}
	if fwd.P95MS >= 0 && fwd.P95MS < 250 {
		t.Errorf("ia forward p95 = %.1fms, expected ≥ injected 300ms bucket", fwd.P95MS)
	}
}
