// Command pprox-lrs runs the legacy recommendation system over TCP: the
// Universal-Recommender-style engine (CCO collaborative filtering over a
// document store and an inverted index) behind the REST API that PProx
// proxies.
//
//	pprox-lrs -listen :8080 -train-every 30s
//
// Training runs as a periodic batch job, as Harness runs Apache Spark
// (§7); POST /train forces a run.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pprox/internal/faults"
	"pprox/internal/lrs/engine"
	"pprox/internal/metrics"
	"pprox/internal/transport"
)

func main() {
	listen := flag.String("listen", ":8080", "listen address")
	trainEvery := flag.Duration("train-every", 30*time.Second, "periodic training interval (0 = manual via POST /train)")
	snapshot := flag.String("snapshot", "", "event-log snapshot file: loaded at start-up if present, written at shutdown")
	debugAddr := flag.String("debug-addr", "", "pprof listen address, e.g. localhost:6061 (off when empty)")
	faultSpec := flag.String("inject-fault", "", "fault injection rules, e.g. 'error:status=503:count=10' (chaos testing)")
	faultSeed := flag.Uint64("fault-seed", 1, "seed of the deterministic fault-injection stream")
	flag.Parse()

	if err := run(*listen, *trainEvery, *snapshot, *debugAddr, *faultSpec, *faultSeed); err != nil {
		fmt.Fprintln(os.Stderr, "pprox-lrs:", err)
		os.Exit(1)
	}
}

func run(listen string, trainEvery time.Duration, snapshot, debugAddr, faultSpec string, faultSeed uint64) error {
	eng, err := loadOrNewEngine(snapshot)
	if err != nil {
		return err
	}
	reg := metrics.NewRegistry()
	instrument := eng.RegisterMetrics(reg, "lrs")
	app := instrument(engine.NewHandler(eng))
	if faultSpec != "" {
		rules, err := faults.ParseSpec(faultSpec)
		if err != nil {
			return fmt.Errorf("-inject-fault: %w", err)
		}
		inj := faults.NewInjector(faultSeed, rules...)
		defer inj.Close()
		app = inj.Middleware(app)
		fmt.Printf("pprox-lrs: fault injection armed: %s\n", faultSpec)
	}
	handler := metrics.Mux(reg, eng.Health, app)

	if debugAddr != "" {
		stopDebug, err := metrics.ServeDebug(debugAddr)
		if err != nil {
			return err
		}
		defer stopDebug()
		fmt.Printf("pprox-lrs: pprof on http://%s/debug/pprof/\n", debugAddr)
	}

	l, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	shutdown := transport.Serve(l, handler)
	fmt.Printf("pprox-lrs: serving on %s (train every %v)\n", l.Addr(), trainEvery)

	stopTrainer := make(chan struct{})
	trainerDone := make(chan struct{})
	go func() {
		defer close(trainerDone)
		if trainEvery <= 0 {
			return
		}
		ticker := time.NewTicker(trainEvery)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if err := eng.TrainNow(); err != nil {
					log.Printf("training failed: %v", err)
					continue
				}
				log.Printf("model trained: %s (%d events)", eng.ModelInfo(), eng.EventCount())
			case <-stopTrainer:
				return
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stopTrainer)
	<-trainerDone
	if snapshot != "" {
		if err := saveSnapshot(eng, snapshot); err != nil {
			log.Printf("snapshot save failed: %v", err)
		} else {
			fmt.Printf("pprox-lrs: snapshot written to %s\n", snapshot)
		}
	}
	posts, queries, trains := eng.Stats()
	fmt.Printf("pprox-lrs: shutting down (posts=%d queries=%d trains=%d)\n", posts, queries, trains)
	return shutdown()
}

// loadOrNewEngine restores from the snapshot file when it exists and
// retrains, mirroring a Harness restart against its persisted MongoDB.
func loadOrNewEngine(snapshot string) (*engine.Engine, error) {
	if snapshot == "" {
		return engine.New(engine.DefaultConfig()), nil
	}
	f, err := os.Open(snapshot)
	if os.IsNotExist(err) {
		return engine.New(engine.DefaultConfig()), nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	eng, err := engine.NewFromSnapshot(engine.DefaultConfig(), f)
	if err != nil {
		return nil, fmt.Errorf("load snapshot %s: %w", snapshot, err)
	}
	if err := eng.TrainNow(); err != nil {
		return nil, err
	}
	fmt.Printf("pprox-lrs: restored %d events from %s\n", eng.EventCount(), snapshot)
	return eng, nil
}

// saveSnapshot writes atomically: temp file then rename.
func saveSnapshot(eng *engine.Engine, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := eng.SaveSnapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
