// Command pprox-lrs runs the legacy recommendation system over TCP: the
// Universal-Recommender-style engine (CCO collaborative filtering over a
// document store and an inverted index) behind the REST API that PProx
// proxies.
//
//	pprox-lrs -listen :8080 -train-every 30s
//
// Training runs as a periodic batch job, as Harness runs Apache Spark
// (§7); POST /train forces a run.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pprox/internal/faults"
	"pprox/internal/hopwire"
	"pprox/internal/lrs/engine"
	"pprox/internal/metrics"
	"pprox/internal/obslog"
	"pprox/internal/telemetry"
)

func main() {
	listen := flag.String("listen", ":8080", "listen address")
	trainEvery := flag.Duration("train-every", 30*time.Second, "periodic training interval (0 = manual via POST /train)")
	snapshot := flag.String("snapshot", "", "event-log snapshot file: loaded at start-up if present, written at shutdown")
	shards := flag.Int("shards", 0, "event-log shards on a consistent-hash ring keyed by the user pseudonym (0 = single shard)")
	walDir := flag.String("wal-dir", "", "WAL-back every event-log shard under this directory: accepted posts survive a process crash (off when empty; see -wal-sync for power-loss durability)")
	walSync := flag.Bool("wal-sync", false, "fsync every WAL append before acknowledging the post: durability extends to OS crashes and power loss (needs -wal-dir)")
	incremental := flag.Bool("incremental", false, "fold each accepted event into the CCO model online; periodic training becomes compaction")
	opsAddr := flag.String("ops-addr", "", "pprox-ops collector address, e.g. localhost:9090: stream periodic telemetry snapshots (off when empty)")
	node := flag.String("node", "lrs", "node name reported to -ops-addr")
	telemetryEvery := flag.Duration("telemetry-interval", 250*time.Millisecond, "telemetry snapshot cadence toward -ops-addr")
	debugAddr := flag.String("debug-addr", "", "pprof listen address, e.g. localhost:6061 (off when empty)")
	faultSpec := flag.String("inject-fault", "", "fault injection rules, e.g. 'error:status=503:count=10' (chaos testing)")
	faultSeed := flag.Uint64("fault-seed", 1, "seed of the deterministic fault-injection stream")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, error")
	flag.Parse()

	logger := obslog.New(os.Stderr, "pprox-lrs", obslog.ParseLevel(*logLevel))
	tele := telemetryOpts{opsAddr: *opsAddr, node: *node, interval: *telemetryEvery}
	engCfg := engine.DefaultConfig()
	engCfg.Shards = *shards
	engCfg.WALDir = *walDir
	engCfg.WALSync = *walSync
	engCfg.Incremental = *incremental
	if err := run(*listen, *trainEvery, *snapshot, *debugAddr, *faultSpec, *faultSeed, engCfg, tele, logger); err != nil {
		logger.Error("fatal", "error", err.Error())
		os.Exit(1)
	}
}

// telemetryOpts bundles the -ops-addr streaming flags.
type telemetryOpts struct {
	opsAddr  string
	node     string
	interval time.Duration
}

// newEmitter builds the binary's telemetry emitter toward -ops-addr, or
// returns nil when streaming is off.
func (t telemetryOpts) newEmitter(reg *metrics.Registry, role string, logger *slog.Logger) (*telemetry.Emitter, error) {
	if t.opsAddr == "" {
		return nil, nil
	}
	pusher, err := telemetry.NewClient(&net.Dialer{Timeout: 10 * time.Second}, t.opsAddr)
	if err != nil {
		return nil, err
	}
	em, err := telemetry.NewEmitter(telemetry.EmitterConfig{
		Node:     t.node,
		Role:     role,
		Registry: reg,
		Pusher:   pusher,
		Interval: t.interval,
		Logger:   logger,
	})
	if err != nil {
		return nil, err
	}
	logger.Info("telemetry streaming", "ops", t.opsAddr, "node", t.node, "interval", t.interval.String())
	return em, nil
}

func run(listen string, trainEvery time.Duration, snapshot, debugAddr, faultSpec string, faultSeed uint64, engCfg engine.Config, tele telemetryOpts, logger *slog.Logger) error {
	eng, err := loadOrNewEngine(engCfg, snapshot, logger)
	if err != nil {
		return err
	}
	defer eng.Close()
	eng.SetLogger(logger)
	reg := metrics.NewRegistry()
	metrics.RegisterBuildInfo(reg)
	metrics.RegisterRuntimeMetrics(reg)
	instrument := eng.RegisterMetrics(reg, "lrs")
	app := instrument(engine.NewHandler(eng))
	if faultSpec != "" {
		rules, err := faults.ParseSpec(faultSpec)
		if err != nil {
			return fmt.Errorf("-inject-fault: %w", err)
		}
		inj := faults.NewInjector(faultSeed, rules...)
		defer inj.Close()
		app = inj.Middleware(app)
		logger.Info("fault injection armed", "spec", faultSpec)
	}
	handler := metrics.Mux(reg, eng.Health, app)

	emitter, err := tele.newEmitter(reg, "lrs", logger)
	if err != nil {
		return err
	}

	stopDebug := func() error { return nil }
	if debugAddr != "" {
		stopDebug, err = metrics.ServeDebug(debugAddr)
		if err != nil {
			return err
		}
		defer stopDebug()
		logger.Info("pprof serving", "addr", debugAddr)
	}

	l, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	// Dual-protocol listener: IA instances running -hopwire reach this
	// server in binary frames, everything else stays plain HTTP.
	shutdown := hopwire.ServeHTTPAndFrames(l, handler)
	logger.Info("serving", "listen", l.Addr().String(), "train_every", trainEvery.String())

	stopTrainer := make(chan struct{})
	trainerDone := make(chan struct{})
	go func() {
		defer close(trainerDone)
		if trainEvery <= 0 {
			return
		}
		ticker := time.NewTicker(trainEvery)
		defer ticker.Stop()
		// On a WAL-backed log the periodic job compacts as it trains:
		// the fresh model's event baseline becomes the shard snapshots
		// and the WALs truncate, bounding restart replay time.
		train := eng.TrainNow
		verb := "model trained"
		if eng.Durable() {
			train = eng.Compact
			verb = "model trained, log compacted"
		}
		for {
			select {
			case <-ticker.C:
				if err := train(); err != nil {
					logger.Warn("training failed", "error", err.Error())
					continue
				}
				logger.Info(verb, "model", eng.ModelInfo(), "events", eng.EventCount())
			case <-stopTrainer:
				return
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stopTrainer)
	<-trainerDone
	if snapshot != "" {
		if err := saveSnapshot(eng, snapshot); err != nil {
			logger.Warn("snapshot save failed", "error", err.Error())
		} else {
			logger.Info("snapshot written", "path", snapshot)
		}
	}
	posts, queries, trains := eng.Stats()
	logger.Info("shutting down", "posts", posts, "queries", queries, "trains", trains)
	// Final telemetry snapshot leaves before the listener closes.
	if emitter != nil {
		if err := emitter.Close(); err != nil {
			logger.Warn("final telemetry flush failed", "error", err.Error())
		}
	}
	if err := stopDebug(); err != nil {
		logger.Warn("debug server shutdown", "error", err.Error())
	}
	return shutdown()
}

// loadOrNewEngine opens the engine (replaying any per-shard WALs under
// -wal-dir) and, when a snapshot file exists and the WALs brought nothing
// back, restores it and retrains — mirroring a Harness restart against
// its persisted MongoDB.
func loadOrNewEngine(cfg engine.Config, snapshot string, logger *slog.Logger) (*engine.Engine, error) {
	if snapshot == "" {
		return engine.Open(cfg)
	}
	f, err := os.Open(snapshot)
	if os.IsNotExist(err) {
		return engine.Open(cfg)
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	eng, err := engine.NewFromSnapshot(cfg, f)
	if err != nil {
		return nil, fmt.Errorf("load snapshot %s: %w", snapshot, err)
	}
	if err := eng.TrainNow(); err != nil {
		return nil, err
	}
	logger.Info("snapshot restored", "events", eng.EventCount(), "path", snapshot)
	return eng, nil
}

// saveSnapshot writes atomically: temp file, fsync, then rename.
func saveSnapshot(eng *engine.Engine, path string) error {
	return eng.SaveSnapshotFile(path)
}
