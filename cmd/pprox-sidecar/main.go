// Command pprox-sidecar is the user-side library as a transparent sidecar:
// an unmodified application keeps speaking the plain LRS REST API to
// localhost, and the sidecar encrypts, forwards through the PProx proxy
// service, and decrypts — the deployment-free integration the paper's
// static-JavaScript library provides for web front ends (§2.1, §3).
//
//	pprox-sidecar -listen 127.0.0.1:8079 -target http://ua-balancer:8081 -bundle bundle.json
//
// Point the application's recommendation endpoint at the sidecar; nothing
// else changes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pprox/internal/client"
	"pprox/internal/message"
	"pprox/internal/metrics"
	"pprox/internal/obslog"
	"pprox/internal/proxy"
	"pprox/internal/transport"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8079", "local address the application talks to")
	target := flag.String("target", "", "base URL of the PProx UA layer (or its balancer)")
	bundlePath := flag.String("bundle", "", "public bundle from pprox-keygen")
	tenant := flag.String("tenant", "", "tenant name on a multi-tenant deployment")
	debugAddr := flag.String("debug-addr", "", "pprof listen address, e.g. localhost:6062 (off when empty)")
	getRetries := flag.Int("get-retries", 2, "extra attempts for failed gets, each freshly encrypted; posts never retry client-side (0 = off)")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, error")
	flag.Parse()

	logger := obslog.New(os.Stderr, "pprox-sidecar", obslog.ParseLevel(*logLevel))
	if err := run(*listen, *target, *bundlePath, *tenant, *debugAddr, *getRetries, logger); err != nil {
		logger.Error("fatal", "error", err.Error())
		os.Exit(1)
	}
}

func run(listen, target, bundlePath, tenant, debugAddr string, getRetries int, logger *slog.Logger) error {
	if target == "" || bundlePath == "" {
		return fmt.Errorf("-target and -bundle are required")
	}
	data, err := os.ReadFile(bundlePath)
	if err != nil {
		return err
	}
	bundle, err := proxy.UnmarshalBundleFile(data)
	if err != nil {
		return err
	}

	httpClient := &http.Client{Timeout: 30 * time.Second}
	cl := client.New(bundle, httpClient, target)
	if tenant != "" {
		cl = cl.ForTenant(tenant, bundle)
	}
	if getRetries > 0 {
		// Gets retry with a fresh end-to-end encryption per attempt;
		// posts make one attempt (retried idempotently on the IA→LRS
		// hop instead — see client.WithGetRetries).
		cl = cl.WithGetRetries(getRetries)
	}

	reg := metrics.NewRegistry()
	metrics.RegisterBuildInfo(reg)
	metrics.RegisterRuntimeMetrics(reg)
	intercepted := reg.HistogramVec("pprox_sidecar_request_seconds",
		"End-to-end latency of requests proxied through the sidecar.",
		nil, "path")
	label := func(req *http.Request) []string {
		p := "other"
		if req.URL.Path == message.EventsPath || req.URL.Path == message.QueriesPath {
			p = req.URL.Path
		}
		return []string{p}
	}
	health := func() metrics.Health {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		checks := map[string]string{"target": "ok"}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+message.HealthPath, nil)
		if err != nil {
			checks["target"] = "bad target URL"
			return metrics.Health{OK: false, Checks: checks}
		}
		resp, err := httpClient.Do(req)
		if err != nil {
			checks["target"] = "unreachable"
			return metrics.Health{OK: false, Checks: checks}
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			checks["target"] = "status " + resp.Status
			return metrics.Health{OK: false, Checks: checks}
		}
		return metrics.Health{OK: true, Checks: checks}
	}
	handler := metrics.Mux(reg, health,
		metrics.InstrumentHandler(intercepted, label, client.NewInterceptor(cl)))

	stopDebug := func() error { return nil }
	if debugAddr != "" {
		stopDebug, err = metrics.ServeDebug(debugAddr)
		if err != nil {
			return err
		}
		defer stopDebug()
		logger.Info("pprof serving", "addr", debugAddr)
	}

	l, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	shutdown := transport.Serve(l, handler)
	logger.Info("intercepting", "listen", l.Addr().String(), "target", target)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Info("shutting down")
	if err := stopDebug(); err != nil {
		logger.Warn("debug server shutdown", "error", err.Error())
	}
	return shutdown()
}
