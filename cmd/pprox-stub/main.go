// Command pprox-stub runs the nginx-style static LRS stub used by the
// micro-benchmarks (§7.1): it acknowledges feedback and serves a constant
// recommendation list of the same size as a Harness response.
//
//	pprox-stub -listen :8080 -items 20
//	pprox-stub -listen :8080 -items 20 -pseudonymize-with keys.json
//
// With -pseudonymize-with, the served items are pre-pseudonymized under
// the IA layer's permanent key, so a full-crypto PProx deployment in
// front of the stub exercises the complete de-pseudonymization path.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pprox/internal/faults"
	"pprox/internal/hopwire"
	"pprox/internal/metrics"
	"pprox/internal/obslog"
	"pprox/internal/proxy"
	"pprox/internal/stub"
	"pprox/internal/telemetry"
)

func main() {
	listen := flag.String("listen", ":8080", "listen address")
	items := flag.Int("items", 20, "static recommendation list size")
	delay := flag.Duration("delay", 0, "artificial service time per request")
	keysPath := flag.String("pseudonymize-with", "", "key file; serve items pseudonymized under the IA permanent key")
	opsAddr := flag.String("ops-addr", "", "pprox-ops collector address, e.g. localhost:9090: stream periodic telemetry snapshots (off when empty)")
	node := flag.String("node", "stub", "node name reported to -ops-addr")
	telemetryEvery := flag.Duration("telemetry-interval", 250*time.Millisecond, "telemetry snapshot cadence toward -ops-addr")
	debugAddr := flag.String("debug-addr", "", "pprof listen address (off when empty)")
	faultSpec := flag.String("inject-fault", "", "fault injection rules, e.g. 'drop:count=5,latency:delay=20ms' (chaos testing)")
	faultSeed := flag.Uint64("fault-seed", 1, "seed of the deterministic fault-injection stream")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, error")
	flag.Parse()

	logger := obslog.New(os.Stderr, "pprox-stub", obslog.ParseLevel(*logLevel))
	tele := telemetryOpts{opsAddr: *opsAddr, node: *node, interval: *telemetryEvery}
	if err := run(*listen, *items, *delay, *keysPath, *debugAddr, *faultSpec, *faultSeed, tele, logger); err != nil {
		logger.Error("fatal", "error", err.Error())
		os.Exit(1)
	}
}

// telemetryOpts bundles the -ops-addr streaming flags.
type telemetryOpts struct {
	opsAddr  string
	node     string
	interval time.Duration
}

func run(listen string, items int, delay time.Duration, keysPath, debugAddr, faultSpec string, faultSeed uint64, tele telemetryOpts, logger *slog.Logger) error {
	var s *stub.Server
	var err error
	if keysPath != "" {
		data, readErr := os.ReadFile(keysPath)
		if readErr != nil {
			return readErr
		}
		_, iaKeys, keyErr := proxy.UnmarshalKeyFile(data)
		if keyErr != nil {
			return keyErr
		}
		names := make([]string, items)
		for i := range names {
			names[i] = fmt.Sprintf("stub-item-%04d", i)
		}
		pseudo, pErr := iaKeys.PseudonymizeItems(names)
		if pErr != nil {
			return pErr
		}
		s, err = stub.NewWithItems(pseudo)
	} else {
		s, err = stub.New(items)
	}
	if err != nil {
		return err
	}
	s.Delay = delay

	reg := metrics.NewRegistry()
	metrics.RegisterBuildInfo(reg)
	metrics.RegisterRuntimeMetrics(reg)
	s.RegisterMetrics(reg, "stub")
	var app http.Handler = s
	if faultSpec != "" {
		rules, err := faults.ParseSpec(faultSpec)
		if err != nil {
			return fmt.Errorf("-inject-fault: %w", err)
		}
		inj := faults.NewInjector(faultSeed, rules...)
		defer inj.Close()
		app = inj.Middleware(app)
		logger.Info("fault injection armed", "spec", faultSpec)
	}
	handler := metrics.Mux(reg, s.Health, app)

	var emitter *telemetry.Emitter
	if tele.opsAddr != "" {
		pusher, err := telemetry.NewClient(&net.Dialer{Timeout: 10 * time.Second}, tele.opsAddr)
		if err != nil {
			return err
		}
		if emitter, err = telemetry.NewEmitter(telemetry.EmitterConfig{
			Node:     tele.node,
			Role:     "stub",
			Registry: reg,
			Pusher:   pusher,
			Interval: tele.interval,
			Logger:   logger,
		}); err != nil {
			return err
		}
		logger.Info("telemetry streaming", "ops", tele.opsAddr, "node", tele.node, "interval", tele.interval.String())
	}

	stopDebug := func() error { return nil }
	if debugAddr != "" {
		stopDebug, err = metrics.ServeDebug(debugAddr)
		if err != nil {
			return err
		}
		defer stopDebug()
		logger.Info("pprof serving", "addr", debugAddr)
	}

	l, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	// Dual-protocol listener: IA instances running -hopwire reach this
	// server in binary frames, everything else stays plain HTTP.
	shutdown := hopwire.ServeHTTPAndFrames(l, handler)
	logger.Info("serving", "items", items, "listen", l.Addr().String())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	posts, gets := s.Counts()
	logger.Info("shutting down", "posts", posts, "gets", gets)
	// Final telemetry snapshot leaves before the listener closes.
	if emitter != nil {
		if err := emitter.Close(); err != nil {
			logger.Warn("final telemetry flush failed", "error", err.Error())
		}
	}
	if err := stopDebug(); err != nil {
		logger.Warn("debug server shutdown", "error", err.Error())
	}
	return shutdown()
}
