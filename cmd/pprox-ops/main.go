// Command pprox-ops is the fleet telemetry collector: every PProx node
// pushes one epoch-granular snapshot per shuffle epoch (over hopwire
// frames, or HTTP POST /telemetry), and pprox-ops aggregates them into
// a fleet view — cross-node per-stage latency quantiles, fleet goodput,
// the worst-epoch anonymity watermark, the SLO/audit state matrix, and
// build-SHA skew — served as JSON on GET /fleet.
//
// The collector sits OUTSIDE the trust boundary: a snapshot carries
// only what the node's public /metrics endpoint already exposes, with
// no wall-clock per-record timestamps and no request identity, so a
// compromised collector learns nothing a /metrics scraper could not.
//
// Modes:
//
//	pprox-ops -listen :9090                 # serve /fleet + /telemetry
//	pprox-ops top -addr localhost:9090      # live terminal fleet view
//	pprox-ops -smoke -out fleet.json        # in-process cluster e2e
//
// Smoke mode boots the full in-process cluster with the telemetry
// plane, runs a workload, asserts every node reports fresh with sane
// rollups, kills one node, asserts the collector marks it stale, and
// writes the final /fleet report to -out for artifact upload.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"pprox/internal/audit"
	"pprox/internal/autoscale"
	"pprox/internal/client"
	"pprox/internal/cluster"
	"pprox/internal/fleet"
	"pprox/internal/hopwire"
	"pprox/internal/metrics"
	"pprox/internal/obslog"
	"pprox/internal/perfslo"
	"pprox/internal/proxy"
	"pprox/internal/telemetry"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "top" {
		if err := runTop(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "pprox-ops top:", err)
			os.Exit(1)
		}
		return
	}

	listen := flag.String("listen", ":9090", "listen address")
	retention := flag.Int("retention", telemetry.DefaultRetention, "snapshots retained per node")
	staleAfter := flag.Duration("stale-after", 0, "fixed staleness threshold (0 = adaptive: two observed epoch gaps)")
	debugAddr := flag.String("debug-addr", "", "pprof listen address, e.g. localhost:6061 (off when empty)")
	hostFleet := flag.Bool("fleet", false, "host the fleet route registry: pprox-proxy -fleet instances register/heartbeat/drain here, and the /fleet rollup carries live membership (DESIGN.md §4j)")
	smoke := flag.Bool("smoke", false, "boot an in-process cluster with the telemetry plane and assert the fleet view tracks it")
	scaleSmoke := flag.Bool("scale-smoke", false, "boot an in-process ELASTIC cluster, ramp load up (pair added) then down (pair drained at an epoch boundary), and assert the audit stays ok with goodput recovered")
	out := flag.String("out", "", "smoke modes: write the final /fleet report (JSON) to this file")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, error")
	flag.Parse()

	logger := obslog.New(os.Stderr, "pprox-ops", obslog.ParseLevel(*logLevel))
	switch {
	case *smoke:
		if err := runSmoke(*out, logger); err != nil {
			logger.Error("smoke test failed", "error", err.Error())
			os.Exit(1)
		}
		logger.Info("smoke test passed")
		return
	case *scaleSmoke:
		if err := runScaleSmoke(*out, logger); err != nil {
			logger.Error("scale smoke test failed", "error", err.Error())
			os.Exit(1)
		}
		logger.Info("scale smoke test passed")
		return
	}
	if err := runServe(*listen, *retention, *staleAfter, *debugAddr, *hostFleet, logger); err != nil {
		logger.Error("fatal", "error", err.Error())
		os.Exit(1)
	}
}

func runServe(listen string, retention int, staleAfter time.Duration, debugAddr string, hostFleet bool, logger *slog.Logger) error {
	ccfg := telemetry.CollectorConfig{
		Retention:  retention,
		StaleAfter: staleAfter,
		Logger:     logger,
	}
	var freg *fleet.Registry
	if hostFleet {
		// Agents heartbeat every 2s; five missed beats means the
		// instance is gone and staleness pruning collects the entry.
		freg = fleet.NewRegistry(fleet.Config{StaleAfter: 10 * time.Second})
		reg := freg
		ccfg.Overview = func() *fleet.Overview {
			pairs := reg.Count("ua", fleet.StatePending) + reg.Count("ua", fleet.StateActive)
			return fleet.BuildOverview(reg, nil, pairs)
		}
	}
	col := telemetry.NewCollector(ccfg)
	reg := metrics.NewRegistry()
	metrics.RegisterBuildInfo(reg)
	metrics.RegisterRuntimeMetrics(reg)
	col.RegisterMetrics(reg)
	routes := col.Routes()
	if freg != nil {
		freg.RegisterMetrics(reg)
		for p, h := range (&fleet.Server{Registry: freg}).Routes() {
			routes[p] = h
		}
		// Housekeeping: remote proxies cannot signal shuffle-epoch
		// boundaries to an out-of-process registry, so pending endpoints
		// are admitted on the idle path, and dead ones pruned.
		stopHousekeeping := make(chan struct{})
		defer close(stopHousekeeping)
		go func() {
			t := time.NewTicker(2 * time.Second)
			defer t.Stop()
			for {
				select {
				case <-stopHousekeeping:
					return
				case <-t.C:
					freg.Prune()
					freg.AdmitIdle(5 * time.Second)
				}
			}
		}()
		logger.Info("fleet registry hosted", "stale_after", "10s")
	}
	handler := metrics.MuxRoutes(reg, col.Health, routes, http.NotFoundHandler())

	stopDebug := func() error { return nil }
	if debugAddr != "" {
		var err error
		stopDebug, err = metrics.ServeDebug(debugAddr)
		if err != nil {
			return err
		}
		defer stopDebug()
		logger.Info("pprof serving", "addr", debugAddr)
	}

	l, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	// Dual-protocol listener: nodes push FrameTelemetry frames on
	// persistent connections; operators and frame-illiterate nodes use
	// plain HTTP on the same port.
	shutdown := hopwire.ServeHTTPAndFrames(l, handler)
	logger.Info("serving", "listen", l.Addr().String())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Info("shutting down")
	if err := stopDebug(); err != nil {
		logger.Warn("debug server shutdown", "error", err.Error())
	}
	return shutdown()
}

// runTop renders a live terminal fleet view from a running collector.
func runTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "localhost:9090", "collector address")
	interval := fs.Duration("interval", time.Second, "refresh interval")
	once := fs.Bool("once", false, "render one frame and exit (no screen clearing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	httpClient := &http.Client{Timeout: 5 * time.Second}
	for {
		report, err := fetchFleet(httpClient, "http://"+strings.TrimPrefix(*addr, "http://"))
		if err != nil {
			return err
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		renderFleet(os.Stdout, report)
		if *once {
			return nil
		}
		time.Sleep(*interval)
	}
}

func fetchFleet(httpClient *http.Client, base string) (telemetry.FleetReport, error) {
	var report telemetry.FleetReport
	resp, err := httpClient.Get(base + telemetry.FleetPath)
	if err != nil {
		return report, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return report, fmt.Errorf("%s: status %s", base+telemetry.FleetPath, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return report, err
	}
	return report, json.Unmarshal(body, &report)
}

// renderFleet prints the fleet view. Everything shown is epoch-granular;
// ages are collector-local arrival staleness, not node clocks.
func renderFleet(w io.Writer, r telemetry.FleetReport) {
	skew := "none"
	if r.Rollups.BuildSkew {
		skew = strings.Join(r.Rollups.BuildSHAs, ",")
	}
	fmt.Fprintf(w, "fleet: %d fresh / %d stale   goodput %.1f rps   worst epoch batch %d   build skew: %s\n\n",
		r.Fresh, r.Stale, r.Rollups.GoodputRPS, r.Rollups.WorstEpochBatch, skew)
	fmt.Fprintf(w, "%-10s %-5s %-6s %7s %8s %8s %9s %-9s %-9s %s\n",
		"NODE", "ROLE", "STATE", "AGE", "EPOCH", "SEQ", "RPS", "AUDIT", "PERF", "PUSHES(err)")
	for _, n := range r.Nodes {
		state := "fresh"
		if n.Stale {
			state = "STALE"
		}
		fmt.Fprintf(w, "%-10s %-5s %-6s %6.1fs %8d %8d %9.1f %-9s %-9s %d(%d)\n",
			n.Node, n.Role, state, n.AgeSeconds, n.Epoch, n.Seq, n.GoodputRPS,
			orDash(n.AuditState), orDash(n.PerfState), n.Transport.Pushes, n.Transport.Errors)
	}
	if fv := r.Rollups.Fleet; fv != nil {
		fmt.Fprintf(w, "\nelastic fleet: %d pairs current / %d desired\n", fv.CurrentPairs, fv.DesiredPairs)
		for _, ep := range fv.Endpoints {
			fmt.Fprintf(w, "  %-4s %-12s %s\n", ep.Service, ep.Addr, strings.ToUpper(ep.State))
		}
		if n := len(fv.Decisions); n > 0 {
			fmt.Fprintf(w, "  recent scaling decisions:\n")
			start := n - 3
			if start < 0 {
				start = 0
			}
			for _, dec := range fv.Decisions[start:] {
				line := fmt.Sprintf("    #%d %-10s %d→%d  rps %.1f  occ %.2f", dec.Seq, dec.Action, dec.Current, dec.Desired, dec.RPS, dec.Occupancy)
				if dec.Err != "" {
					line += "  err: " + dec.Err
				}
				fmt.Fprintln(w, line)
			}
		}
	}
	if len(r.Rollups.StageQuantiles) > 0 {
		fmt.Fprintf(w, "\nmerged stage latency (ms):\n")
		stages := make([]string, 0, len(r.Rollups.StageQuantiles))
		for s := range r.Rollups.StageQuantiles {
			stages = append(stages, s)
		}
		sort.Strings(stages)
		for _, s := range stages {
			q := r.Rollups.StageQuantiles[s]
			over := ""
			if q.Overflow {
				over = "  (beyond last bucket)"
			}
			fmt.Fprintf(w, "  %-14s p50 %8.3f  p90 %8.3f  p99 %8.3f  over %d obs%s\n",
				s, q.P50*1000, q.P90*1000, q.P99*1000, q.Count, over)
		}
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// Smoke-mode shape: a full hopwire cluster with the telemetry plane,
// driven through enough full batches that every node reports multiple
// epochs, then one node killed to prove staleness detection.
const (
	smokeShuffle = 8
	smokeBatches = 6
)

func runSmoke(out string, logger *slog.Logger) error {
	spec := cluster.Spec{
		ProxyEnabled:   true,
		UA:             1,
		IA:             1,
		Encryption:     true,
		ItemPseudonyms: true,
		Shuffle:        smokeShuffle,
		ShuffleTimeout: 100 * time.Millisecond,
		UseStub:        true,
		LRSFrontends:   1,
		Hopwire:        true,
		OpsAddr:        "ops-0",
		Audit:          &audit.Config{},
		PerfSLO:        &perfslo.Config{},
		Logger:         logger,
	}
	d, err := cluster.Deploy(spec)
	if err != nil {
		return err
	}
	defer d.Close()

	cl := d.Client(10 * time.Second)
	runBatches := func(batches int) {
		var wg sync.WaitGroup
		for b := 0; b < batches; b++ {
			for i := 0; i < smokeShuffle; i++ {
				u := fmt.Sprintf("smoke-user-%02d", i)
				wg.Add(1)
				go func() {
					defer wg.Done()
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					defer cancel()
					// Failures are tolerated: after the LRS kill below,
					// requests still fill (and flush) the UA shuffler.
					cl.Get(ctx, u)
				}()
			}
			wg.Wait()
		}
	}

	runBatches(smokeBatches)
	// Let the last epoch leave on the flush timer and reach the collector.
	time.Sleep(300 * time.Millisecond)

	httpClient := d.HTTPClient(5 * time.Second)
	report, err := fetchFleet(httpClient, "http://ops-0")
	if err != nil {
		return err
	}
	renderFleet(os.Stdout, report)

	wantNodes := []string{"ia-0", "lrs-0", "ua-0"}
	if len(report.Nodes) != len(wantNodes) {
		return fmt.Errorf("fleet reports %d nodes, want %d", len(report.Nodes), len(wantNodes))
	}
	for i, n := range report.Nodes {
		if n.Node != wantNodes[i] {
			return fmt.Errorf("fleet node[%d] = %q, want %q", i, n.Node, wantNodes[i])
		}
		if n.Stale {
			return fmt.Errorf("node %s stale while pushing", n.Node)
		}
		if n.Seq == 0 || n.Transport.Pushes == 0 {
			return fmt.Errorf("node %s reported no pushes", n.Node)
		}
	}
	if report.Rollups.GoodputRPS <= 0 {
		return fmt.Errorf("fleet goodput %.1f rps, want > 0", report.Rollups.GoodputRPS)
	}
	if _, ok := report.Rollups.StageQuantiles["serve"]; !ok {
		return fmt.Errorf("fleet rollup lacks merged serve-stage quantiles")
	}
	if w := report.Rollups.WorstEpochBatch; w <= 0 || w > smokeShuffle {
		return fmt.Errorf("worst epoch batch %d, want within (0, %d]", w, smokeShuffle)
	}
	if report.Rollups.BuildSkew {
		return fmt.Errorf("build skew flagged in a single-binary fleet: %v", report.Rollups.BuildSHAs)
	}

	// Kill the LRS front end: its feed must go silent and the collector
	// must mark it stale while the proxies keep reporting.
	if err := d.Kill("lrs-0"); err != nil {
		return err
	}
	logger.Info("killed lrs-0")
	runBatches(smokeBatches)
	time.Sleep(500 * time.Millisecond)

	report, err = fetchFleet(httpClient, "http://ops-0")
	if err != nil {
		return err
	}
	renderFleet(os.Stdout, report)
	if out != "" {
		if err := writeJSON(out, report); err != nil {
			return err
		}
		logger.Info("fleet report written", "path", out)
	}
	var lrsStale bool
	for _, n := range report.Nodes {
		switch n.Node {
		case "lrs-0":
			lrsStale = n.Stale
		case "ua-0", "ia-0":
			if n.Stale {
				return fmt.Errorf("node %s went stale while still pushing", n.Node)
			}
		}
	}
	if !lrsStale {
		return fmt.Errorf("lrs-0 not marked stale after kill")
	}
	if report.Stale != 1 || report.Fresh != 2 {
		return fmt.Errorf("fleet counts fresh=%d stale=%d, want 2/1", report.Fresh, report.Stale)
	}
	return nil
}

// Scale-smoke shape: an elastic cluster driven through a load ramp that
// forces one scale-up and one scale-down, with the privacy audit
// asserted ok at every phase — the CI gate for DESIGN.md §4j.
const scaleShuffle = 8

func runScaleSmoke(out string, logger *slog.Logger) error {
	// A vanishingly small pair capacity makes any observed traffic
	// demand Max pairs and an idle window demand Min, so the ramp below
	// forces exactly one scale-up and one scale-down regardless of
	// wall-clock jitter. Interval 0: this harness ticks the reconciler
	// itself so every assertion lands on a known loop state.
	ctrl := &autoscale.Controller{
		PairCapacityRPS:   0.001,
		TargetUtilization: 1,
		Min:               1,
		Max:               2,
		Hysteresis:        1,
	}
	d, err := cluster.Deploy(cluster.Spec{
		ProxyEnabled:   true,
		UA:             1,
		IA:             1,
		Encryption:     true,
		ItemPseudonyms: true,
		Shuffle:        scaleShuffle,
		ShuffleTimeout: 300 * time.Millisecond,
		// Batch mode so epochs travel whole between hops: with two IA
		// backends, per-message forwarding would split one UA epoch
		// across them into sub-S releases (§4j).
		Batch:             true,
		UseStub:           true,
		LRSFrontends:      1,
		OpsAddr:           "ops-0",
		Audit:             &audit.Config{},
		Elastic:           &cluster.ElasticSpec{Controller: ctrl},
		TelemetryInterval: 50 * time.Millisecond,
		Logger:            logger,
	})
	if err != nil {
		return err
	}
	defer d.Close()
	rec := d.Reconciler

	// Keep-alives off so every request dials: the balancer's per-dial
	// round robin then splits each two-pair round exactly S/S across
	// the UAs and every shuffler flushes on occupancy, never the timer.
	httpClient := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			DialContext:       d.Balancer.DialContext,
			DisableKeepAlives: true,
		},
	}
	cl := client.New(proxy.Bundle(d.UAKeys, d.IAKeys), httpClient, d.Entry)
	round := func(size int) error {
		var wg sync.WaitGroup
		var mu sync.Mutex
		failed := 0
		for i := 0; i < size; i++ {
			u := fmt.Sprintf("scale-user-%02d", i)
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				if _, err := cl.Get(ctx, u); err != nil {
					mu.Lock()
					failed++
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		if failed != 0 {
			return fmt.Errorf("%d of %d requests failed", failed, size)
		}
		return nil
	}
	auditOK := func(phase string) error {
		if st := d.Auditor.State(); st != audit.StateOK {
			return fmt.Errorf("audit state %s during %q, want ok: %+v", st, phase, d.Auditor.Report())
		}
		return nil
	}

	// Phase 1 — baseline on one pair. The first tick has no signal
	// window yet and must hold.
	if err := round(scaleShuffle); err != nil {
		return err
	}
	if dec := rec.Tick(); dec.Action != fleet.ActionHold {
		return fmt.Errorf("first tick = %+v, want hold", dec)
	}
	if err := auditOK("baseline"); err != nil {
		return err
	}

	// Phase 2 — ramp up: the observed rate demands a second pair.
	if err := round(scaleShuffle); err != nil {
		return err
	}
	dec := rec.Tick()
	if dec.Action != fleet.ActionUp || dec.Desired != 2 {
		return fmt.Errorf("tick under load = %+v, want scale-up to 2", dec)
	}
	logger.Info("scaled up", "pairs", d.Pairs())
	// The pending pair is admitted at the next epoch boundary.
	if err := round(scaleShuffle); err != nil {
		return err
	}
	deadline := time.Now().Add(10 * time.Second)
	for d.Registry.Count("ua", fleet.StateActive) != 2 ||
		d.Registry.Count("ia", fleet.StateActive) != 2 {
		if time.Now().After(deadline) {
			return fmt.Errorf("pair never admitted: %+v", d.Registry.Membership())
		}
		time.Sleep(5 * time.Millisecond)
	}
	logger.Info("pair admitted at epoch boundary")

	// Phase 3 — churned steady state across both pairs.
	for i := 0; i < 2; i++ {
		if err := round(2 * scaleShuffle); err != nil {
			return err
		}
	}
	rec.Tick() // consume the loaded window (desired == current: hold)
	if err := auditOK("two-pair traffic"); err != nil {
		return err
	}

	// Phase 4 — ramp down: an idle window drains the extra pair at an
	// epoch boundary, final epoch whole.
	time.Sleep(400 * time.Millisecond)
	dec = rec.Tick()
	if dec.Action != fleet.ActionDown || dec.Desired != 1 {
		return fmt.Errorf("idle tick = %+v, want scale-down to 1", dec)
	}
	if d.Pairs() != 1 {
		return fmt.Errorf("pairs after scale-down = %d, want 1", d.Pairs())
	}
	if st := d.Registry.Stats(); st.Drains != 2 || st.Deregistrations != 2 {
		return fmt.Errorf("registry stats after drain = %+v, want 2 drains and 2 deregistrations", st)
	}
	if err := auditOK("after drain"); err != nil {
		return err
	}
	logger.Info("scaled down", "pairs", d.Pairs())

	// Phase 5 — goodput recovery on the remaining pair.
	for i := 0; i < 2; i++ {
		if err := round(scaleShuffle); err != nil {
			return err
		}
	}
	if err := auditOK("post-drain traffic"); err != nil {
		return err
	}
	time.Sleep(400 * time.Millisecond) // final epochs reach the collector

	report, err := fetchFleet(d.HTTPClient(5*time.Second), "http://ops-0")
	if err != nil {
		return err
	}
	renderFleet(os.Stdout, report)
	if out != "" {
		if err := writeJSON(out, report); err != nil {
			return err
		}
		logger.Info("fleet report written", "path", out)
	}
	if report.Rollups.GoodputRPS <= 0 {
		return fmt.Errorf("fleet goodput %.1f rps after scale-down, want > 0", report.Rollups.GoodputRPS)
	}
	fv := report.Rollups.Fleet
	if fv == nil {
		return fmt.Errorf("/fleet rollup carries no fleet overview")
	}
	if fv.CurrentPairs != 1 || fv.DesiredPairs != 1 {
		return fmt.Errorf("fleet overview %d/%d pairs, want 1/1", fv.CurrentPairs, fv.DesiredPairs)
	}
	var up, down bool
	for _, dd := range fv.Decisions {
		up = up || dd.Action == fleet.ActionUp
		down = down || dd.Action == fleet.ActionDown
	}
	if !up || !down {
		return fmt.Errorf("decision ring %+v missing the scale-up or scale-down", fv.Decisions)
	}
	return nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
