// Command pprox-ops is the fleet telemetry collector: every PProx node
// pushes one epoch-granular snapshot per shuffle epoch (over hopwire
// frames, or HTTP POST /telemetry), and pprox-ops aggregates them into
// a fleet view — cross-node per-stage latency quantiles, fleet goodput,
// the worst-epoch anonymity watermark, the SLO/audit state matrix, and
// build-SHA skew — served as JSON on GET /fleet.
//
// The collector sits OUTSIDE the trust boundary: a snapshot carries
// only what the node's public /metrics endpoint already exposes, with
// no wall-clock per-record timestamps and no request identity, so a
// compromised collector learns nothing a /metrics scraper could not.
//
// Modes:
//
//	pprox-ops -listen :9090                 # serve /fleet + /telemetry
//	pprox-ops top -addr localhost:9090      # live terminal fleet view
//	pprox-ops -smoke -out fleet.json        # in-process cluster e2e
//
// Smoke mode boots the full in-process cluster with the telemetry
// plane, runs a workload, asserts every node reports fresh with sane
// rollups, kills one node, asserts the collector marks it stale, and
// writes the final /fleet report to -out for artifact upload.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"pprox/internal/audit"
	"pprox/internal/cluster"
	"pprox/internal/hopwire"
	"pprox/internal/metrics"
	"pprox/internal/obslog"
	"pprox/internal/perfslo"
	"pprox/internal/telemetry"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "top" {
		if err := runTop(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "pprox-ops top:", err)
			os.Exit(1)
		}
		return
	}

	listen := flag.String("listen", ":9090", "listen address")
	retention := flag.Int("retention", telemetry.DefaultRetention, "snapshots retained per node")
	staleAfter := flag.Duration("stale-after", 0, "fixed staleness threshold (0 = adaptive: two observed epoch gaps)")
	debugAddr := flag.String("debug-addr", "", "pprof listen address, e.g. localhost:6061 (off when empty)")
	smoke := flag.Bool("smoke", false, "boot an in-process cluster with the telemetry plane and assert the fleet view tracks it")
	out := flag.String("out", "", "smoke mode: write the final /fleet report (JSON) to this file")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, error")
	flag.Parse()

	logger := obslog.New(os.Stderr, "pprox-ops", obslog.ParseLevel(*logLevel))
	if *smoke {
		if err := runSmoke(*out, logger); err != nil {
			logger.Error("smoke test failed", "error", err.Error())
			os.Exit(1)
		}
		logger.Info("smoke test passed")
		return
	}
	if err := runServe(*listen, *retention, *staleAfter, *debugAddr, logger); err != nil {
		logger.Error("fatal", "error", err.Error())
		os.Exit(1)
	}
}

func runServe(listen string, retention int, staleAfter time.Duration, debugAddr string, logger *slog.Logger) error {
	col := telemetry.NewCollector(telemetry.CollectorConfig{
		Retention:  retention,
		StaleAfter: staleAfter,
		Logger:     logger,
	})
	reg := metrics.NewRegistry()
	metrics.RegisterBuildInfo(reg)
	metrics.RegisterRuntimeMetrics(reg)
	col.RegisterMetrics(reg)
	handler := metrics.MuxRoutes(reg, col.Health, col.Routes(), http.NotFoundHandler())

	stopDebug := func() error { return nil }
	if debugAddr != "" {
		var err error
		stopDebug, err = metrics.ServeDebug(debugAddr)
		if err != nil {
			return err
		}
		defer stopDebug()
		logger.Info("pprof serving", "addr", debugAddr)
	}

	l, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	// Dual-protocol listener: nodes push FrameTelemetry frames on
	// persistent connections; operators and frame-illiterate nodes use
	// plain HTTP on the same port.
	shutdown := hopwire.ServeHTTPAndFrames(l, handler)
	logger.Info("serving", "listen", l.Addr().String())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Info("shutting down")
	if err := stopDebug(); err != nil {
		logger.Warn("debug server shutdown", "error", err.Error())
	}
	return shutdown()
}

// runTop renders a live terminal fleet view from a running collector.
func runTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "localhost:9090", "collector address")
	interval := fs.Duration("interval", time.Second, "refresh interval")
	once := fs.Bool("once", false, "render one frame and exit (no screen clearing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	httpClient := &http.Client{Timeout: 5 * time.Second}
	for {
		report, err := fetchFleet(httpClient, "http://"+strings.TrimPrefix(*addr, "http://"))
		if err != nil {
			return err
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		renderFleet(os.Stdout, report)
		if *once {
			return nil
		}
		time.Sleep(*interval)
	}
}

func fetchFleet(httpClient *http.Client, base string) (telemetry.FleetReport, error) {
	var report telemetry.FleetReport
	resp, err := httpClient.Get(base + telemetry.FleetPath)
	if err != nil {
		return report, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return report, fmt.Errorf("%s: status %s", base+telemetry.FleetPath, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return report, err
	}
	return report, json.Unmarshal(body, &report)
}

// renderFleet prints the fleet view. Everything shown is epoch-granular;
// ages are collector-local arrival staleness, not node clocks.
func renderFleet(w io.Writer, r telemetry.FleetReport) {
	skew := "none"
	if r.Rollups.BuildSkew {
		skew = strings.Join(r.Rollups.BuildSHAs, ",")
	}
	fmt.Fprintf(w, "fleet: %d fresh / %d stale   goodput %.1f rps   worst epoch batch %d   build skew: %s\n\n",
		r.Fresh, r.Stale, r.Rollups.GoodputRPS, r.Rollups.WorstEpochBatch, skew)
	fmt.Fprintf(w, "%-10s %-5s %-6s %7s %8s %8s %9s %-9s %-9s %s\n",
		"NODE", "ROLE", "STATE", "AGE", "EPOCH", "SEQ", "RPS", "AUDIT", "PERF", "PUSHES(err)")
	for _, n := range r.Nodes {
		state := "fresh"
		if n.Stale {
			state = "STALE"
		}
		fmt.Fprintf(w, "%-10s %-5s %-6s %6.1fs %8d %8d %9.1f %-9s %-9s %d(%d)\n",
			n.Node, n.Role, state, n.AgeSeconds, n.Epoch, n.Seq, n.GoodputRPS,
			orDash(n.AuditState), orDash(n.PerfState), n.Transport.Pushes, n.Transport.Errors)
	}
	if len(r.Rollups.StageQuantiles) > 0 {
		fmt.Fprintf(w, "\nmerged stage latency (ms):\n")
		stages := make([]string, 0, len(r.Rollups.StageQuantiles))
		for s := range r.Rollups.StageQuantiles {
			stages = append(stages, s)
		}
		sort.Strings(stages)
		for _, s := range stages {
			q := r.Rollups.StageQuantiles[s]
			over := ""
			if q.Overflow {
				over = "  (beyond last bucket)"
			}
			fmt.Fprintf(w, "  %-14s p50 %8.3f  p90 %8.3f  p99 %8.3f  over %d obs%s\n",
				s, q.P50*1000, q.P90*1000, q.P99*1000, q.Count, over)
		}
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// Smoke-mode shape: a full hopwire cluster with the telemetry plane,
// driven through enough full batches that every node reports multiple
// epochs, then one node killed to prove staleness detection.
const (
	smokeShuffle = 8
	smokeBatches = 6
)

func runSmoke(out string, logger *slog.Logger) error {
	spec := cluster.Spec{
		ProxyEnabled:   true,
		UA:             1,
		IA:             1,
		Encryption:     true,
		ItemPseudonyms: true,
		Shuffle:        smokeShuffle,
		ShuffleTimeout: 100 * time.Millisecond,
		UseStub:        true,
		LRSFrontends:   1,
		Hopwire:        true,
		OpsAddr:        "ops-0",
		Audit:          &audit.Config{},
		PerfSLO:        &perfslo.Config{},
		Logger:         logger,
	}
	d, err := cluster.Deploy(spec)
	if err != nil {
		return err
	}
	defer d.Close()

	cl := d.Client(10 * time.Second)
	runBatches := func(batches int) {
		var wg sync.WaitGroup
		for b := 0; b < batches; b++ {
			for i := 0; i < smokeShuffle; i++ {
				u := fmt.Sprintf("smoke-user-%02d", i)
				wg.Add(1)
				go func() {
					defer wg.Done()
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					defer cancel()
					// Failures are tolerated: after the LRS kill below,
					// requests still fill (and flush) the UA shuffler.
					cl.Get(ctx, u)
				}()
			}
			wg.Wait()
		}
	}

	runBatches(smokeBatches)
	// Let the last epoch leave on the flush timer and reach the collector.
	time.Sleep(300 * time.Millisecond)

	httpClient := d.HTTPClient(5 * time.Second)
	report, err := fetchFleet(httpClient, "http://ops-0")
	if err != nil {
		return err
	}
	renderFleet(os.Stdout, report)

	wantNodes := []string{"ia-0", "lrs-0", "ua-0"}
	if len(report.Nodes) != len(wantNodes) {
		return fmt.Errorf("fleet reports %d nodes, want %d", len(report.Nodes), len(wantNodes))
	}
	for i, n := range report.Nodes {
		if n.Node != wantNodes[i] {
			return fmt.Errorf("fleet node[%d] = %q, want %q", i, n.Node, wantNodes[i])
		}
		if n.Stale {
			return fmt.Errorf("node %s stale while pushing", n.Node)
		}
		if n.Seq == 0 || n.Transport.Pushes == 0 {
			return fmt.Errorf("node %s reported no pushes", n.Node)
		}
	}
	if report.Rollups.GoodputRPS <= 0 {
		return fmt.Errorf("fleet goodput %.1f rps, want > 0", report.Rollups.GoodputRPS)
	}
	if _, ok := report.Rollups.StageQuantiles["serve"]; !ok {
		return fmt.Errorf("fleet rollup lacks merged serve-stage quantiles")
	}
	if w := report.Rollups.WorstEpochBatch; w <= 0 || w > smokeShuffle {
		return fmt.Errorf("worst epoch batch %d, want within (0, %d]", w, smokeShuffle)
	}
	if report.Rollups.BuildSkew {
		return fmt.Errorf("build skew flagged in a single-binary fleet: %v", report.Rollups.BuildSHAs)
	}

	// Kill the LRS front end: its feed must go silent and the collector
	// must mark it stale while the proxies keep reporting.
	if err := d.Kill("lrs-0"); err != nil {
		return err
	}
	logger.Info("killed lrs-0")
	runBatches(smokeBatches)
	time.Sleep(500 * time.Millisecond)

	report, err = fetchFleet(httpClient, "http://ops-0")
	if err != nil {
		return err
	}
	renderFleet(os.Stdout, report)
	if out != "" {
		if err := writeJSON(out, report); err != nil {
			return err
		}
		logger.Info("fleet report written", "path", out)
	}
	var lrsStale bool
	for _, n := range report.Nodes {
		switch n.Node {
		case "lrs-0":
			lrsStale = n.Stale
		case "ua-0", "ia-0":
			if n.Stale {
				return fmt.Errorf("node %s went stale while still pushing", n.Node)
			}
		}
	}
	if !lrsStale {
		return fmt.Errorf("lrs-0 not marked stale after kill")
	}
	if report.Stale != 1 || report.Fresh != 2 {
		return fmt.Errorf("fleet counts fresh=%d stale=%d, want 2/1", report.Fresh, report.Stale)
	}
	return nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
