// Command pprox-keygen generates the key material of a PProx deployment
// as the RaaS *client application* would (§4.1): a private key pair and a
// permanent pseudonymization key per proxy layer, plus the public bundle
// embedded in the user-side library.
//
//	pprox-keygen -out ./keys
//
// writes keys.json (both layers, secret — provisioned to attested
// enclaves only) and bundle.json (public keys only — safe to ship as
// static web code).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pprox/internal/obslog"
	"pprox/internal/proxy"
)

func main() {
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	if err := run(*out); err != nil {
		obslog.New(os.Stderr, "pprox-keygen", nil).Error("fatal", "error", err.Error())
		os.Exit(1)
	}
}

func run(out string) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	ua, err := proxy.NewLayerKeys()
	if err != nil {
		return err
	}
	ia, err := proxy.NewLayerKeys()
	if err != nil {
		return err
	}
	// The shared link key lets the UA wrap the UA→IA hop in a randomized
	// envelope, so a retried request can be re-encrypted with a fresh IV
	// and is unlinkable to the attempt it repeats.
	if err := proxy.PairLinkKey(ua, ia); err != nil {
		return err
	}

	keys, err := proxy.MarshalKeyFile(ua, ia)
	if err != nil {
		return err
	}
	keysPath := filepath.Join(out, "keys.json")
	if err := os.WriteFile(keysPath, keys, 0o600); err != nil {
		return err
	}

	bundle, err := proxy.MarshalBundleFile(proxy.Bundle(ua, ia))
	if err != nil {
		return err
	}
	bundlePath := filepath.Join(out, "bundle.json")
	if err := os.WriteFile(bundlePath, bundle, 0o644); err != nil {
		return err
	}

	fmt.Printf("wrote %s (secret: provision to attested enclaves only)\n", keysPath)
	fmt.Printf("wrote %s (public: embed in the user-side library)\n", bundlePath)
	return nil
}
