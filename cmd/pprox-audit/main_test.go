package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pprox/internal/audit"
	"pprox/internal/obslog"
)

func TestSmokeModeDetectsInjectedViolation(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	if err := runSmoke(out, obslog.Nop()); err != nil {
		t.Fatalf("smoke run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep audit.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report artifact is not valid JSON: %v", err)
	}
	if rep.State != audit.StateViolated.String() {
		t.Errorf("artifact state = %q, want violated", rep.State)
	}
	if rep.WorstEpochBatch != smokeShuffle-smokeDropped {
		t.Errorf("artifact worst epoch = %d, want %d", rep.WorstEpochBatch, smokeShuffle-smokeDropped)
	}
}

func TestScrapeModeAgainstFakeNode(t *testing.T) {
	rep := audit.Report{
		TargetS:            8,
		Objective:          0.99,
		State:              audit.StateViolated.String(),
		EffectiveAnonymity: 5,
		WorstEpochBatch:    5,
		EpochsTotal:        12,
		UnderfilledTotal:   2,
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case audit.PrivacyPath:
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(rep)
		case "/metrics":
			w.Write([]byte("pprox_audit_slo_state 2\n"))
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	out := filepath.Join(t.TempDir(), "cluster.json")
	violated, err := runScrape([]string{srv.URL + "/"}, 5*time.Second, out)
	if err != nil {
		t.Fatal(err)
	}
	if !violated {
		t.Error("scrape of a violated node did not report violation")
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"violated"`) {
		t.Errorf("cluster artifact missing node state: %s", data)
	}

	if _, err := runScrape([]string{srv.URL + "/missing", ""}, time.Second, ""); err == nil {
		t.Error("scrape of a dead endpoint did not fail")
	}
}
