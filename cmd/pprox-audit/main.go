// Command pprox-audit is the operator's view of the privacy SLO. It has
// two modes:
//
// Scrape mode reads /metrics, /privacy, and (when served) /perf from
// every listed node and renders a cluster-wide report — privacy-SLO
// state, effective anonymity set, worst-epoch watermark, burn rates,
// breached layers, plus the per-stage latency-SLO assessment — exiting 3
// when any node reports either SLO violated (for CI/cron gating):
//
//	pprox-audit -targets http://ua-0:8081,http://ia-0:8082
//
// Smoke mode (-smoke) boots the full in-process cluster, runs a short
// workload with one injected under-filled-epoch fault, and asserts the
// auditor catches it: the run fails unless the SLO transitions to
// violated, the pprox_audit_slo_state metric reports it, and the epochs
// flagged in the /privacy report are exactly the under-filled ones. The
// final report is written to -out for build-artifact upload:
//
//	pprox-audit -smoke -out audit-report.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"pprox/internal/audit"
	"pprox/internal/cluster"
	"pprox/internal/faults"
	"pprox/internal/metrics"
	"pprox/internal/obslog"
	"pprox/internal/perfslo"
	"pprox/internal/telemetry"
)

func main() {
	targets := flag.String("targets", "", "comma-separated node base URLs to scrape (e.g. http://ua-0:8081,http://ia-0:8082)")
	opsAddr := flag.String("ops-addr", "", "pprox-ops collector address: read one /fleet scrape instead of scraping every node (falls back to -targets when unreachable)")
	timeout := flag.Duration("timeout", 5*time.Second, "per-scrape HTTP timeout")
	smoke := flag.Bool("smoke", false, "boot an in-process cluster, inject an under-filled epoch, assert the auditor flags it")
	out := flag.String("out", "", "write the final report (JSON) to this file")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, error")
	flag.Parse()

	logger := obslog.New(os.Stderr, "pprox-audit", obslog.ParseLevel(*logLevel))
	switch {
	case *smoke:
		if err := runSmoke(*out, logger); err != nil {
			logger.Error("smoke test failed", "error", err.Error())
			os.Exit(1)
		}
		logger.Info("smoke test passed")
	case *opsAddr != "" || *targets != "":
		violated, err := runReport(*opsAddr, *targets, *timeout, *out, logger)
		if err != nil {
			logger.Error("fatal", "error", err.Error())
			os.Exit(1)
		}
		if violated {
			os.Exit(3)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: pprox-audit -targets URL[,URL...] | pprox-audit -ops-addr HOST:PORT | pprox-audit -smoke [-out report.json]")
		os.Exit(2)
	}
}

// runReport prefers one aggregated /fleet scrape from pprox-ops — O(1)
// instead of O(nodes) — and falls back to direct per-node scraping when
// the collector is down but targets are listed.
func runReport(opsAddr, targets string, timeout time.Duration, out string, logger *slog.Logger) (bool, error) {
	if opsAddr != "" {
		violated, err := runFleetScrape(opsAddr, timeout, out)
		if err == nil {
			return violated, nil
		}
		if strings.TrimSpace(targets) == "" {
			return false, err
		}
		logger.Warn("pprox-ops unreachable; falling back to direct node scrapes", "error", err.Error())
	}
	return runScrape(strings.Split(targets, ","), timeout, out)
}

// runFleetScrape renders the operator report from the collector's fleet
// view: per-node audit/perf verdicts with collector-side staleness — a
// stale node's verdict is last-known, flagged as such, never silently
// fresh.
func runFleetScrape(opsAddr string, timeout time.Duration, out string) (violated bool, err error) {
	httpClient := &http.Client{Timeout: timeout}
	base := "http://" + strings.TrimPrefix(strings.TrimRight(opsAddr, "/"), "http://")
	body, err := fetch(httpClient, base+telemetry.FleetPath)
	if err != nil {
		return false, err
	}
	var fleet telemetry.FleetReport
	if err := json.Unmarshal(body, &fleet); err != nil {
		return false, fmt.Errorf("decode %s: %w", telemetry.FleetPath, err)
	}
	if len(fleet.Nodes) == 0 {
		return false, fmt.Errorf("%s%s: no nodes reporting", base, telemetry.FleetPath)
	}
	w := os.Stdout
	fmt.Fprintf(w, "%s (via pprox-ops)\n", base)
	fmt.Fprintf(w, "  fleet: %d fresh, %d stale   goodput %.1f rps   worst epoch ever: %d\n",
		fleet.Fresh, fleet.Stale, fleet.Rollups.GoodputRPS, fleet.Rollups.WorstEpochBatch)
	if fleet.Rollups.BuildSkew {
		fmt.Fprintf(w, "  BUILD SKEW: %s\n", strings.Join(fleet.Rollups.BuildSHAs, ", "))
	}
	for _, n := range fleet.Nodes {
		state := "fresh"
		if n.Stale {
			state = "STALE (last known state below)"
		}
		fmt.Fprintf(w, "  node %-8s %-5s %s  age %.1fs  epoch %d\n",
			n.Node, n.Role, state, n.AgeSeconds, n.Epoch)
		if n.AuditState != "" || n.PerfState != "" {
			fmt.Fprintf(w, "    privacy SLO: %-9s  perf SLO: %s\n",
				orUnset(n.AuditState), orUnset(n.PerfState))
		}
		if n.AuditState == audit.StateViolated.String() || n.PerfState == perfslo.StateViolated.String() {
			violated = true
		}
	}
	if fv := fleet.Rollups.Fleet; fv != nil {
		fmt.Fprintf(w, "  elastic fleet: %d pairs current / %d desired\n",
			fv.CurrentPairs, fv.DesiredPairs)
		for _, ep := range fv.Endpoints {
			marker := ""
			if ep.State == "draining" {
				marker = "  (flushing final epoch whole, then deregisters)"
			}
			fmt.Fprintf(w, "    %-4s %-12s %s%s\n", ep.Service, ep.Addr, ep.State, marker)
		}
	}
	for stage, q := range fleet.Rollups.StageQuantiles {
		fmt.Fprintf(w, "  stage %-14s p50 %.3gms  p99 %.3gms  (%d obs, fleet-merged)\n",
			stage, q.P50*1000, q.P99*1000, q.Count)
	}
	if out != "" {
		if err := writeJSON(out, fleet); err != nil {
			return violated, err
		}
	}
	return violated, nil
}

func orUnset(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// nodeView is one scraped node: its privacy report, its perf report
// when the node serves /perf, plus the audit metric families from
// /metrics.
type nodeView struct {
	Target  string
	Report  audit.Report
	Perf    *perfslo.Report
	Metrics metrics.ScrapeSet
}

// runScrape reads every target and renders the operator report to
// stdout; it reports whether any node's SLO is violated.
func runScrape(targets []string, timeout time.Duration, out string) (violated bool, err error) {
	httpClient := &http.Client{Timeout: timeout}
	var views []nodeView
	for _, raw := range targets {
		t := strings.TrimRight(strings.TrimSpace(raw), "/")
		if t == "" {
			continue
		}
		v, err := scrapeNode(httpClient, t)
		if err != nil {
			return false, fmt.Errorf("scrape %s: %w", t, err)
		}
		views = append(views, v)
	}
	if len(views) == 0 {
		return false, fmt.Errorf("no targets")
	}
	for _, v := range views {
		renderNode(os.Stdout, v)
		if v.Report.State == audit.StateViolated.String() {
			violated = true
		}
		if v.Perf != nil && v.Perf.State == perfslo.StateViolated.String() {
			violated = true
		}
	}
	if out != "" {
		reports := make(map[string]audit.Report, len(views))
		for _, v := range views {
			reports[v.Target] = v.Report
		}
		if err := writeJSON(out, reports); err != nil {
			return violated, err
		}
	}
	return violated, nil
}

func scrapeNode(httpClient *http.Client, target string) (nodeView, error) {
	v := nodeView{Target: target}
	body, err := fetch(httpClient, target+audit.PrivacyPath)
	if err != nil {
		return v, err
	}
	if err := json.Unmarshal(body, &v.Report); err != nil {
		return v, fmt.Errorf("decode %s: %w", audit.PrivacyPath, err)
	}
	// /perf is optional: only nodes running the latency-SLO evaluator
	// serve it, so a failed fetch means "not enabled", not an error.
	if body, perfErr := fetch(httpClient, target+perfslo.PerfPath); perfErr == nil {
		var perf perfslo.Report
		if err := json.Unmarshal(body, &perf); err != nil {
			return v, fmt.Errorf("decode %s: %w", perfslo.PerfPath, err)
		}
		v.Perf = &perf
	}
	if body, err = fetch(httpClient, target+"/metrics"); err != nil {
		return v, err
	}
	v.Metrics = metrics.ParseExposition(string(body))
	return v, nil
}

func fetch(httpClient *http.Client, url string) ([]byte, error) {
	resp, err := httpClient.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: status %s", url, resp.Status)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 8<<20))
}

// renderNode prints one node's privacy assessment. Everything shown is
// epoch-granular — the report carries nothing finer.
func renderNode(w io.Writer, v nodeView) {
	r := v.Report
	fmt.Fprintf(w, "%s\n", v.Target)
	fmt.Fprintf(w, "  privacy SLO: %s (for %ds)  target S=%d  objective %.2f%%\n",
		strings.ToUpper(r.State), r.StateSeconds, r.TargetS, r.Objective*100)
	fmt.Fprintf(w, "  effective anonymity set: %d   worst epoch ever: %d\n",
		r.EffectiveAnonymity, r.WorstEpochBatch)
	fmt.Fprintf(w, "  epochs: %d total, %d under-filled   transitions: %d violations, %d warns\n",
		r.EpochsTotal, r.UnderfilledTotal, r.Violations, r.Warns)
	if sheds, ok := sumFamily(v.Metrics, "pprox_proxy_shuffle_shed_total"); ok {
		fmt.Fprintf(w, "  shuffler sheds: %.0f  (requests released without full-epoch cover)\n", sheds)
	}
	renderCache(w, v.Metrics)
	for _, win := range r.Windows {
		state := "ok"
		if win.Burning {
			state = "BURNING"
		}
		fmt.Fprintf(w, "  window %-4s burn rate %6.2f  (%d/%d under-filled, min batch %d)  %s\n",
			win.Window, win.BurnRate, win.Underfilled, win.Epochs, win.MinBatch, state)
	}
	if len(r.Breached) > 0 {
		fmt.Fprintf(w, "  BREACHED LAYERS (keys not yet rotated): %s\n", strings.Join(r.Breached, ", "))
	}
	if len(r.DegradedChecks) > 0 {
		fmt.Fprintf(w, "  degraded: %s\n", strings.Join(r.DegradedChecks, "; "))
	}
	if len(r.KeyAges) > 0 {
		layers := make([]string, 0, len(r.KeyAges))
		for l := range r.KeyAges {
			layers = append(layers, l)
		}
		sort.Strings(layers)
		parts := make([]string, len(layers))
		for i, l := range layers {
			parts[i] = fmt.Sprintf("%s %ds", l, r.KeyAges[l])
		}
		fmt.Fprintf(w, "  key ages: %s\n", strings.Join(parts, ", "))
	}
	for _, n := range r.Nodes {
		fmt.Fprintf(w, "  node %-6s epochs=%d under=%d worst=%d last=%d\n",
			n.Node, n.Epochs, n.Underfilled, n.WorstBatch, n.LastBatch)
	}
	renderPerf(w, v.Perf)
}

// renderPerf prints the node's per-stage latency-SLO assessment when it
// serves /perf. Exemplars are shuffle-epoch ids — the same granularity
// the privacy report above exposes, nothing finer.
func renderPerf(w io.Writer, p *perfslo.Report) {
	if p == nil {
		return
	}
	fmt.Fprintf(w, "  perf SLO: %s (for %ds)  transitions: %d violations, %d warns\n",
		strings.ToUpper(p.State), p.StateSeconds, p.Violations, p.Warns)
	for _, o := range p.Objectives {
		observed := fmt.Sprintf("%.3gms", o.ObservedSeconds*1000)
		if o.ObservedOverflow {
			observed = ">" + observed
		}
		fmt.Fprintf(w, "    %-6s %-14s p%g ≤ %.3gms  observed %s over %d obs  %s\n",
			o.Node, o.Name, o.Quantile*100, o.ThresholdSeconds*1000, observed,
			o.Observations, strings.ToUpper(o.State))
		for _, win := range o.Windows {
			state := "ok"
			if win.Burning {
				state = "BURNING"
			}
			fmt.Fprintf(w, "      window %-5s burn rate %6.2f  (%d/%d slow)  %s\n",
				win.Window, win.BurnRate, win.Slow, win.Observations, state)
		}
		if len(o.ExemplarEpochs) > 0 {
			fmt.Fprintf(w, "      breach exemplar epochs: %v (resolve via the trace export)\n", o.ExemplarEpochs)
		}
	}
}

// sumFamily totals every series of one metric family across its label
// combinations; ok reports whether the family appeared in the scrape at
// all (a registered-but-zero counter still counts as present).
func sumFamily(set metrics.ScrapeSet, fam string) (total float64, ok bool) {
	for series, v := range set {
		if name, _ := metrics.ParseSeries(series); name == fam {
			total += v
			ok = true
		}
	}
	return total, ok
}

// renderCache prints the in-enclave recommendation cache's epoch-granular
// counters when the node exports them (IA instances with -cache). The
// shuffler line above is the privacy half of the story; this is the
// efficiency half — hits, by construction, still travel in full epochs.
func renderCache(w io.Writer, set metrics.ScrapeSet) {
	hits, okH := sumFamily(set, "pprox_reccache_hits_total")
	misses, okM := sumFamily(set, "pprox_reccache_misses_total")
	if !okH && !okM {
		return
	}
	rate := 0.0
	if hits+misses > 0 {
		rate = hits / (hits + misses)
	}
	coalesced, _ := sumFamily(set, "pprox_reccache_coalesced_total")
	evictions, _ := sumFamily(set, "pprox_reccache_evictions_total")
	flushes, _ := sumFamily(set, "pprox_reccache_flushes_total")
	entries, _ := sumFamily(set, "pprox_reccache_entries")
	pages, _ := sumFamily(set, "pprox_reccache_epc_pages")
	fmt.Fprintf(w, "  reccache: hit rate %.1f%% (%.0f hits, %.0f misses)  coalesced %.0f  evictions %.0f  flushes %.0f  resident %.0f entries / %.0f EPC pages\n",
		rate*100, hits, misses, coalesced, evictions, flushes, entries, pages)
}

// Smoke-mode shape: every batch the workload sends fills the shuffler
// exactly (smokeShuffle concurrent requests), except that the fault
// injector swallows smokeDropped requests out of one batch before they
// reach the UA shuffler — that batch's survivors leave on the flush
// timer as an under-filled epoch the auditor must flag.
const (
	smokeShuffle = 8
	smokeBatches = 6
	smokeDropped = 3
)

func runSmoke(out string, logger *slog.Logger) error {
	// The injector starts with no rules; the fault is armed in the
	// middle of the run so the auditor sees healthy epochs on both
	// sides of the dip.
	inj := faults.NewInjector(1)
	defer inj.Close()

	spec := cluster.Spec{
		ProxyEnabled:   true,
		UA:             1,
		IA:             1,
		Encryption:     true,
		ItemPseudonyms: true,
		Shuffle:        smokeShuffle,
		ShuffleTimeout: 100 * time.Millisecond,
		UseStub:        true,
		Cache:          true,
		LRSFrontends:   1,
		Audit:          &audit.Config{},
		PerfSLO:        &perfslo.Config{},
		Logger:         logger,
		NodeMiddleware: func(addr string, h http.Handler) http.Handler {
			if addr != "ua-0" {
				return h
			}
			return inj.Middleware(h)
		},
	}
	d, err := cluster.Deploy(spec)
	if err != nil {
		return err
	}
	defer d.Close()

	cl := d.Client(10 * time.Second)
	users := make([]string, smokeShuffle)
	for i := range users {
		users[i] = fmt.Sprintf("smoke-user-%02d", i)
	}
	sent, failed := 0, 0
	for batch := 0; batch < smokeBatches; batch++ {
		if batch == smokeBatches/2 {
			// The next batch of 8 loses 3 requests before the shuffler;
			// its 5 survivors leave on the flush timer under-filled.
			inj.Arm(faults.Rule{
				Kind:   faults.KindError,
				Status: http.StatusServiceUnavailable,
				Count:  smokeDropped,
			})
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		for _, u := range users {
			u := u
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				_, err := cl.Get(ctx, u)
				mu.Lock()
				sent++
				if err != nil {
					failed++
				}
				mu.Unlock()
			}()
		}
		wg.Wait()
	}
	// Let the survivors of the faulty batch leave on the flush timer.
	time.Sleep(400 * time.Millisecond)

	logger.Info("workload done", "sent", sent, "failed", failed)
	if failed != smokeDropped {
		return fmt.Errorf("fault injection off target: %d failed requests, want %d", failed, smokeDropped)
	}

	// Operator path: scrape one node over the (in-memory) wire exactly
	// as the scrape mode would, rather than peeking at internals.
	httpClient := d.HTTPClient(5 * time.Second)
	v, err := scrapeNode(httpClient, "http://ua-0")
	if err != nil {
		return err
	}
	renderNode(os.Stdout, v)
	if out != "" {
		if err := writeJSON(out, v.Report); err != nil {
			return err
		}
		logger.Info("report written", "path", out)
	}

	if got := v.Report.State; got != audit.StateViolated.String() {
		return fmt.Errorf("auditor state = %q after under-filled epoch, want violated", got)
	}
	if v.Perf == nil {
		return fmt.Errorf("node serves no /perf report despite the perf-SLO evaluator running")
	}
	if s := v.Metrics["pprox_audit_slo_state"]; s != float64(audit.StateViolated) {
		return fmt.Errorf("pprox_audit_slo_state = %g, want %d", s, audit.StateViolated)
	}
	if v.Metrics["pprox_audit_underfilled_epochs_total"] == 0 {
		return fmt.Errorf("no under-filled epoch counted despite injected fault")
	}
	// The same users repeat every batch, so the IA cache must have served
	// hits — and those hits must not have thinned the epochs above (the
	// under-filled ones are exactly the injector's doing).
	if hits, _ := sumFamily(v.Metrics, "pprox_reccache_hits_total"); hits == 0 {
		return fmt.Errorf("recommendation cache reported no hits for a repeating workload")
	}
	// The flagged epochs must be exactly the under-filled ones: every
	// record smaller than S flagged, every full one not.
	flagged := 0
	for _, n := range v.Report.Nodes {
		for _, e := range n.RecentEpochs {
			if e.Underfilled != (e.Batch < v.Report.TargetS) {
				return fmt.Errorf("epoch %d on %s: batch %d flagged=%v", e.Seq, n.Node, e.Batch, e.Underfilled)
			}
			if e.Underfilled {
				flagged++
			}
		}
	}
	if flagged == 0 {
		return fmt.Errorf("no epoch flagged under-filled in the report")
	}
	return nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
