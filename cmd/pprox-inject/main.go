// Command pprox-inject is the HTTP load injector of the evaluation
// (§7.1, the loadtest equivalent): it drives post and/or get requests at
// a fixed open-loop rate through the user-side library and reports the
// round-trip latency distribution as a candlestick row.
//
//	pprox-inject -target http://localhost:8081 -bundle bundle.json -rps 50 -duration 30s -mode get
//	pprox-inject -target http://localhost:8080 -plain -rps 250 -duration 1m -mode mixed
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"time"

	"pprox/internal/client"
	"pprox/internal/obslog"
	"pprox/internal/proxy"
	"pprox/internal/workload"
)

func main() {
	target := flag.String("target", "", "base URL of the service (UA balancer or LRS)")
	bundlePath := flag.String("bundle", "", "public bundle from pprox-keygen (omit with -plain)")
	plain := flag.Bool("plain", false, "send cleartext identifiers (baseline)")
	rps := flag.Int("rps", 50, "requests per second (open loop)")
	duration := flag.Duration("duration", 30*time.Second, "injection duration")
	trim := flag.Duration("trim", 0, "trim this much from both ends of the measurement window")
	mode := flag.String("mode", "get", "request mix: get, post, or mixed")
	users := flag.Int("users", 1000, "distinct user population")
	itemsN := flag.Int("items", 5000, "distinct item population (post mode)")
	reps := flag.Int("reps", 1, "repetitions to aggregate")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	if err := run(*target, *bundlePath, *plain, *rps, *duration, *trim, *mode, *users, *itemsN, *reps, *seed); err != nil {
		obslog.New(os.Stderr, "pprox-inject", nil).Error("fatal", "error", err.Error())
		os.Exit(1)
	}
}

func run(target, bundlePath string, plain bool, rps int, duration, trim time.Duration, mode string, users, itemsN, reps int, seed int64) error {
	if target == "" {
		return fmt.Errorf("-target is required")
	}

	httpClient := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        4096,
			MaxIdleConnsPerHost: 1024,
		},
	}

	var cl *client.Client
	if plain {
		cl = client.NewPlain(httpClient, target)
	} else {
		if bundlePath == "" {
			return fmt.Errorf("-bundle is required unless -plain")
		}
		data, err := os.ReadFile(bundlePath)
		if err != nil {
			return err
		}
		bundle, err := proxy.UnmarshalBundleFile(data)
		if err != nil {
			return err
		}
		cl = client.New(bundle, httpClient, target)
	}

	rng := rand.New(rand.NewSource(seed))
	pick := func(prefix string, n int) string {
		return fmt.Sprintf("%s-%05d", prefix, rng.Intn(n))
	}
	var fn workload.RequestFunc
	switch mode {
	case "get":
		fn = func(ctx context.Context) error {
			_, err := cl.Get(ctx, pick("user", users))
			return err
		}
	case "post":
		fn = func(ctx context.Context) error {
			return cl.Post(ctx, pick("user", users), pick("item", itemsN), "")
		}
	case "mixed":
		fn = func(ctx context.Context) error {
			if rng.Intn(2) == 0 {
				return cl.Post(ctx, pick("user", users), pick("item", itemsN), "")
			}
			_, err := cl.Get(ctx, pick("user", users))
			return err
		}
	default:
		return fmt.Errorf("mode must be get, post, or mixed")
	}

	inj := &workload.Injector{RPS: rps, Duration: duration, Trim: trim, MaxInFlight: 4096}
	fmt.Printf("pprox-inject: %d RPS × %v × %d rep(s) against %s (%s)\n", rps, duration, reps, target, mode)
	res := inj.RunRepetitions(context.Background(), reps, fn)

	fmt.Printf("sent=%d failed=%d shed=%d elapsed=%v\n", res.Sent, res.Failed, res.Shed, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("latency: %s\n", res.Latencies.Candlestick())
	return nil
}
