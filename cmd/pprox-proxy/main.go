// Command pprox-proxy runs one PProx proxy layer instance over TCP:
//
//	pprox-proxy -role ua -listen :8081 -next http://localhost:8082 -keys keys.json -shuffle 10
//	pprox-proxy -role ia -listen :8082 -next http://localhost:8080 -keys keys.json -shuffle 10
//
// The process launches the layer's (simulated) SGX enclave, runs the
// attested provisioning handshake with the key file, and serves the LRS
// REST API. Horizontal scaling = more processes behind a load balancer,
// each provisioned with the same key file (§5).
//
// Fault handling toward the next hop is on by default (-no-resilience
// turns it off): every forward gets a per-attempt deadline (-hop-timeout),
// failed forwards retry with jittered exponential backoff (-retries,
// -retry-backoff), and a circuit breaker (-breaker-threshold,
// -breaker-cooldown) fails fast while probing the hop's /healthz. Retries
// on a UA instance are privacy-aware: with a link key in the key file each
// retry re-randomizes the hop envelope and re-enters the shuffler.
//
// -inject-fault arms deterministic fault injection on this instance's
// application endpoints, for chaos experiments:
//
//	pprox-proxy ... -inject-fault 'error:status=503:count=10,latency:delay=50ms'
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pprox/internal/enclave"
	"pprox/internal/eventloop"
	"pprox/internal/faults"
	"pprox/internal/metrics"
	"pprox/internal/proxy"
	"pprox/internal/resilience"
	"pprox/internal/trace"
	"pprox/internal/transport"
)

// options collects every flag of the binary; run consumes it whole instead
// of a dozen positional parameters.
type options struct {
	role           string
	listen         string
	next           string
	keysPath       string
	shuffle        int
	shuffleTimeout time.Duration
	workers        int
	noItemPseudo   bool
	passthrough    bool
	useEventloop   bool
	debugAddr      string
	traceLog       string

	noResilience     bool
	hopTimeout       time.Duration
	retries          int
	retryBackoff     time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration

	faultSpec string
	faultSeed uint64
}

func main() {
	var o options
	flag.StringVar(&o.role, "role", "", "layer role: ua or ia")
	flag.StringVar(&o.listen, "listen", ":8081", "listen address")
	flag.StringVar(&o.next, "next", "", "next hop base URL (IA balancer for ua, LRS for ia)")
	flag.StringVar(&o.keysPath, "keys", "", "key file from pprox-keygen (omit with -passthrough)")
	flag.IntVar(&o.shuffle, "shuffle", 0, "shuffle buffer size S (0 = off)")
	flag.DurationVar(&o.shuffleTimeout, "shuffle-timeout", 500*time.Millisecond, "shuffle flush timer")
	flag.IntVar(&o.workers, "workers", 2, "data-processing pool size")
	flag.BoolVar(&o.noItemPseudo, "no-item-pseudonyms", false, "send item identifiers to the LRS in the clear (§6.3)")
	flag.BoolVar(&o.passthrough, "passthrough", false, "forward without cryptography (baseline m1)")
	flag.BoolVar(&o.useEventloop, "eventloop", false, "serve with the §5 acceptor+queue+worker-pool architecture instead of net/http")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "pprof listen address, e.g. localhost:6060 (off when empty)")
	flag.StringVar(&o.traceLog, "trace-log", "", "append privacy-safe trace records (JSON lines) to this file")
	flag.BoolVar(&o.noResilience, "no-resilience", false, "disable retries, hop deadlines, and the circuit breaker (single attempts)")
	flag.DurationVar(&o.hopTimeout, "hop-timeout", 10*time.Second, "per-attempt deadline toward the next hop")
	flag.IntVar(&o.retries, "retries", 2, "retry attempts after a failed forward (0 = one attempt)")
	flag.DurationVar(&o.retryBackoff, "retry-backoff", 50*time.Millisecond, "base of the jittered exponential retry backoff")
	flag.IntVar(&o.breakerThreshold, "breaker-threshold", 5, "consecutive forward failures before the breaker opens (0 = no breaker)")
	flag.DurationVar(&o.breakerCooldown, "breaker-cooldown", 2*time.Second, "wait between breaker health probes of the next hop")
	flag.StringVar(&o.faultSpec, "inject-fault", "", "fault injection rules, e.g. 'error:status=503:count=10,latency:delay=50ms' (chaos testing)")
	flag.Uint64Var(&o.faultSeed, "fault-seed", 1, "seed of the deterministic fault-injection stream")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "pprox-proxy:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	var r proxy.Role
	switch o.role {
	case "ua":
		r = proxy.RoleUA
	case "ia":
		r = proxy.RoleIA
	default:
		return fmt.Errorf("role must be ua or ia, got %q", o.role)
	}
	if o.next == "" {
		return fmt.Errorf("-next is required")
	}

	cfg := proxy.Config{
		Role:           r,
		Next:           o.next,
		HTTPClient:     transport.DefaultHTTPClient(30 * time.Second),
		ShuffleSize:    o.shuffle,
		ShuffleTimeout: o.shuffleTimeout,
		Workers:        o.workers,
		PassThrough:    o.passthrough,
	}
	if !o.noResilience {
		cfg.Resilience = &resilience.Policy{
			HopTimeout:       o.hopTimeout,
			MaxAttempts:      o.retries + 1,
			BackoffBase:      o.retryBackoff,
			BreakerThreshold: o.breakerThreshold,
			BreakerCooldown:  o.breakerCooldown,
		}
	}

	if !o.passthrough {
		if o.keysPath == "" {
			return fmt.Errorf("-keys is required unless -passthrough")
		}
		data, err := os.ReadFile(o.keysPath)
		if err != nil {
			return err
		}
		uaKeys, iaKeys, err := proxy.UnmarshalKeyFile(data)
		if err != nil {
			return err
		}
		// Local platform + attestation trust anchor: in a production
		// deployment the quote verification happens remotely at the
		// RaaS client; see DESIGN.md §1 for the SGX substitution.
		as, err := enclave.NewAttestationService()
		if err != nil {
			return err
		}
		platform := enclave.NewPlatform(as)
		if r == proxy.RoleUA {
			e := proxy.NewUAEnclave(platform)
			if err := uaKeys.Provision(as, e, proxy.UAIdentity); err != nil {
				return err
			}
			cfg.Enclave = e
		} else {
			opts := proxy.IAOptions{DisableItemPseudonymization: o.noItemPseudo}
			e := proxy.NewIAEnclave(platform, opts)
			if err := iaKeys.Provision(as, e, proxy.IAIdentityFor(opts)); err != nil {
				return err
			}
			cfg.Enclave = e
		}
	}

	layer, err := proxy.New(cfg)
	if err != nil {
		return err
	}
	defer layer.Close()

	var app http.Handler = layer
	if o.faultSpec != "" {
		rules, err := faults.ParseSpec(o.faultSpec)
		if err != nil {
			return fmt.Errorf("-inject-fault: %w", err)
		}
		inj := faults.NewInjector(o.faultSeed, rules...)
		defer inj.Close()
		// Only application traffic is injected; /metrics and /healthz
		// stay honest so breakers and operators see the real state.
		app = inj.Middleware(app)
		fmt.Printf("pprox-proxy: fault injection armed: %s\n", o.faultSpec)
	}

	reg := metrics.NewRegistry()
	layer.RegisterMetrics(reg, o.role)
	handler := metrics.Mux(reg, layer.Health, app)

	if o.traceLog != "" {
		f, err := os.OpenFile(o.traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		layer.SetTracer(trace.New(o.role, trace.WriterSink(f), nil))
		if o.shuffle <= 0 {
			// Without a shuffler nothing flushes the trace buffer, so run
			// the epochs on the flush timer instead. Batching still hides
			// per-request timing, but only shuffling gives the 1/S bound.
			stopEpochs := make(chan struct{})
			defer close(stopEpochs)
			go func() {
				ticker := time.NewTicker(o.shuffleTimeout)
				defer ticker.Stop()
				for {
					select {
					case <-ticker.C:
						layer.Tracer().AdvanceEpoch()
					case <-stopEpochs:
						return
					}
				}
			}()
		}
	}

	if o.debugAddr != "" {
		stopDebug, err := metrics.ServeDebug(o.debugAddr)
		if err != nil {
			return err
		}
		defer stopDebug()
		fmt.Printf("pprox-proxy: pprof on http://%s/debug/pprof/\n", o.debugAddr)
	}

	l, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}

	var shutdown func() error
	if o.useEventloop {
		srv := &eventloop.Server{Handler: handler, Workers: o.workers}
		serveDone := make(chan error, 1)
		go func() { serveDone <- srv.Serve(l) }()
		shutdown = func() error {
			err := srv.Close(l)
			<-serveDone
			return err
		}
	} else {
		shutdown = transport.Serve(l, handler)
	}
	mode := "net/http"
	if o.useEventloop {
		mode = "eventloop"
	}
	fmt.Printf("pprox-proxy: %s layer on %s → %s (S=%d, workers=%d, %s, /metrics exposed)\n",
		o.role, l.Addr(), o.next, o.shuffle, o.workers, mode)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	served, failed := layer.Stats()
	retried, failFast := layer.RetryStats()
	fmt.Printf("pprox-proxy: shutting down (served=%d failed=%d retries=%d fail_fast=%d)\n",
		served, failed, retried, failFast)
	return shutdown()
}
