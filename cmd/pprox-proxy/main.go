// Command pprox-proxy runs one PProx proxy layer instance over TCP:
//
//	pprox-proxy -role ua -listen :8081 -next http://localhost:8082 -keys keys.json -shuffle 10
//	pprox-proxy -role ia -listen :8082 -next http://localhost:8080 -keys keys.json -shuffle 10
//
// The process launches the layer's (simulated) SGX enclave, runs the
// attested provisioning handshake with the key file, and serves the LRS
// REST API. Horizontal scaling = more processes behind a load balancer,
// each provisioned with the same key file (§5).
//
// Fault handling toward the next hop is on by default (-no-resilience
// turns it off): every forward gets a per-attempt deadline (-hop-timeout),
// failed forwards retry with jittered exponential backoff (-retries,
// -retry-backoff), and a circuit breaker (-breaker-threshold,
// -breaker-cooldown) fails fast while probing the hop's /healthz. Retries
// on a UA instance are privacy-aware: with a link key in the key file each
// retry re-randomizes the hop envelope and re-enters the shuffler.
//
// -inject-fault arms deterministic fault injection on this instance's
// application endpoints, for chaos experiments:
//
//	pprox-proxy ... -inject-fault 'error:status=503:count=10,latency:delay=50ms'
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"pprox/internal/audit"
	"pprox/internal/enclave"
	"pprox/internal/eventloop"
	"pprox/internal/faults"
	"pprox/internal/fleet"
	"pprox/internal/hopwire"
	"pprox/internal/metrics"
	"pprox/internal/obslog"
	"pprox/internal/obsprof"
	"pprox/internal/perfslo"
	"pprox/internal/proxy"
	"pprox/internal/reccache"
	"pprox/internal/resilience"
	"pprox/internal/telemetry"
	"pprox/internal/trace"
	"pprox/internal/transport"
)

// options collects every flag of the binary; run consumes it whole instead
// of a dozen positional parameters.
type options struct {
	role           string
	listen         string
	next           string
	keysPath       string
	shuffle        int
	shuffleTimeout time.Duration
	workers        int
	batch          bool
	hopwireOn      bool
	lrsConcurrency int
	noItemPseudo   bool
	passthrough    bool
	useEventloop   bool
	opsAddr        string
	node           string
	telemetryEvery time.Duration
	fleetURL       string
	fleetService   string
	advertise      string
	drainTimeout   time.Duration
	debugAddr      string
	traceLog       string
	logLevel       string
	auditSLO       bool
	auditObjective float64
	perfSLO        bool
	perfQuantile   float64
	profileDir     string

	cache         bool
	cacheTTL      time.Duration
	cacheEPCPages int

	noResilience     bool
	hopTimeout       time.Duration
	retries          int
	retryBackoff     time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration

	faultSpec string
	faultSeed uint64
}

func main() {
	var o options
	flag.StringVar(&o.role, "role", "", "layer role: ua or ia")
	flag.StringVar(&o.listen, "listen", ":8081", "listen address")
	flag.StringVar(&o.next, "next", "", "next hop base URL (IA balancer for ua, LRS for ia)")
	flag.StringVar(&o.keysPath, "keys", "", "key file from pprox-keygen (omit with -passthrough)")
	flag.IntVar(&o.shuffle, "shuffle", 0, "shuffle buffer size S (0 = off)")
	flag.DurationVar(&o.shuffleTimeout, "shuffle-timeout", 500*time.Millisecond, "shuffle flush timer")
	flag.IntVar(&o.workers, "workers", 2, "data-processing pool size")
	flag.BoolVar(&o.batch, "batch", false, "epoch-batched pipeline: one batched ECALL and one UA→IA envelope per shuffle epoch (ua role; needs -shuffle > 1, incompatible with -passthrough)")
	flag.BoolVar(&o.hopwireOn, "hopwire", false, "speak the persistent binary frame protocol toward -next and serve frames alongside HTTP on -listen (DESIGN.md §4h; falls back to HTTP against peers that do not answer in frames; incompatible with -eventloop)")
	flag.IntVar(&o.lrsConcurrency, "lrs-concurrency", proxy.DefaultLRSConcurrency, "bound on concurrent IA→LRS requests (ia role; negative = unbounded)")
	flag.BoolVar(&o.noItemPseudo, "no-item-pseudonyms", false, "send item identifiers to the LRS in the clear (§6.3)")
	flag.BoolVar(&o.passthrough, "passthrough", false, "forward without cryptography (baseline m1)")
	flag.BoolVar(&o.useEventloop, "eventloop", false, "serve with the §5 acceptor+queue+worker-pool architecture instead of net/http")
	flag.StringVar(&o.opsAddr, "ops-addr", "", "pprox-ops collector address, e.g. localhost:9090: stream one telemetry snapshot per shuffle epoch (off when empty)")
	flag.StringVar(&o.node, "node", "", "node name reported to -ops-addr (default: the role)")
	flag.DurationVar(&o.telemetryEvery, "telemetry-interval", 0, "telemetry heartbeat when no shuffle epochs fire (default: -shuffle-timeout, or 250ms)")
	flag.StringVar(&o.fleetURL, "fleet", "", "fleet registry base URL, e.g. http://ops:9090: register on boot, heartbeat, and drain at a shuffle-epoch boundary on SIGTERM (DESIGN.md §4j; off when empty)")
	flag.StringVar(&o.fleetService, "fleet-service", "", "service name announced to the fleet registry (default: the role)")
	flag.StringVar(&o.advertise, "advertise", "", "address peers should dial for this instance (default: the bound listen address)")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 0, "bound on the graceful drain before stragglers are refused (default: 2×-shuffle-timeout + 5s)")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "pprof listen address, e.g. localhost:6060 (off when empty)")
	flag.StringVar(&o.traceLog, "trace-log", "", "append privacy-safe trace records (JSON lines) to this file")
	flag.StringVar(&o.logLevel, "log-level", "info", "structured log level: debug, info, warn, error")
	flag.BoolVar(&o.auditSLO, "audit", false, "run the privacy-SLO auditor and serve its report on /privacy")
	flag.Float64Var(&o.auditObjective, "audit-objective", 0.99, "fraction of shuffle epochs that must be fully occupied")
	flag.BoolVar(&o.perfSLO, "perf", false, "run the per-stage latency SLO evaluator and serve its report on /perf")
	flag.Float64Var(&o.perfQuantile, "perf-quantile", 0.99, "latency quantile each perf objective constrains")
	flag.StringVar(&o.profileDir, "profile-dir", "", "capture CPU/heap/goroutine profiles into this directory on perf-SLO warn/violation (off when empty)")
	flag.BoolVar(&o.cache, "cache", false, "enable the in-enclave recommendation cache (IA role only)")
	flag.DurationVar(&o.cacheTTL, "cache-ttl", reccache.DefaultTTL, "per-entry TTL of the recommendation cache")
	flag.IntVar(&o.cacheEPCPages, "cache-epc-pages", reccache.DefaultMaxPages, "EPC page budget of the recommendation cache")
	flag.BoolVar(&o.noResilience, "no-resilience", false, "disable retries, hop deadlines, and the circuit breaker (single attempts)")
	flag.DurationVar(&o.hopTimeout, "hop-timeout", 10*time.Second, "per-attempt deadline toward the next hop")
	flag.IntVar(&o.retries, "retries", 2, "retry attempts after a failed forward (0 = one attempt)")
	flag.DurationVar(&o.retryBackoff, "retry-backoff", 50*time.Millisecond, "base of the jittered exponential retry backoff")
	flag.IntVar(&o.breakerThreshold, "breaker-threshold", 5, "consecutive forward failures before the breaker opens (0 = no breaker)")
	flag.DurationVar(&o.breakerCooldown, "breaker-cooldown", 2*time.Second, "wait between breaker health probes of the next hop")
	flag.StringVar(&o.faultSpec, "inject-fault", "", "fault injection rules, e.g. 'error:status=503:count=10,latency:delay=50ms' (chaos testing)")
	flag.Uint64Var(&o.faultSeed, "fault-seed", 1, "seed of the deterministic fault-injection stream")
	flag.Parse()

	logger := obslog.New(os.Stderr, "pprox-proxy", obslog.ParseLevel(o.logLevel))
	if err := run(o, logger); err != nil {
		logger.Error("fatal", "error", err.Error())
		os.Exit(1)
	}
}

func run(o options, logger *slog.Logger) error {
	var r proxy.Role
	switch o.role {
	case "ua":
		r = proxy.RoleUA
	case "ia":
		r = proxy.RoleIA
	default:
		return fmt.Errorf("role must be ua or ia, got %q", o.role)
	}
	if o.next == "" {
		return fmt.Errorf("-next is required")
	}

	cfg := proxy.Config{
		Role:           r,
		Next:           o.next,
		HTTPClient:     transport.DefaultHTTPClient(30 * time.Second),
		ShuffleSize:    o.shuffle,
		ShuffleTimeout: o.shuffleTimeout,
		Workers:        o.workers,
		PassThrough:    o.passthrough,
	}
	if r == proxy.RoleUA {
		cfg.Batch = o.batch
	} else {
		cfg.LRSConcurrency = o.lrsConcurrency
	}
	if o.batch && r != proxy.RoleUA {
		logger.Warn("-batch is a ua-role flag; ia serves /batch unconditionally")
	}
	if o.hopwireOn {
		if o.useEventloop {
			return fmt.Errorf("-hopwire and -eventloop are mutually exclusive: the frame mux needs the net/http server behind it")
		}
		cfg.Hopwire = true
		cfg.HopDialer = &net.Dialer{Timeout: 10 * time.Second}
	}
	if !o.noResilience {
		cfg.Resilience = &resilience.Policy{
			HopTimeout:       o.hopTimeout,
			MaxAttempts:      o.retries + 1,
			BackoffBase:      o.retryBackoff,
			BreakerThreshold: o.breakerThreshold,
			BreakerCooldown:  o.breakerCooldown,
		}
	}

	if o.cache && (r != proxy.RoleIA || o.passthrough) {
		return fmt.Errorf("-cache requires -role ia without -passthrough")
	}

	if !o.passthrough {
		if o.keysPath == "" {
			return fmt.Errorf("-keys is required unless -passthrough")
		}
		data, err := os.ReadFile(o.keysPath)
		if err != nil {
			return err
		}
		uaKeys, iaKeys, err := proxy.UnmarshalKeyFile(data)
		if err != nil {
			return err
		}
		// Local platform + attestation trust anchor: in a production
		// deployment the quote verification happens remotely at the
		// RaaS client; see DESIGN.md §1 for the SGX substitution.
		as, err := enclave.NewAttestationService()
		if err != nil {
			return err
		}
		platform := enclave.NewPlatform(as)
		if r == proxy.RoleUA {
			e := proxy.NewUAEnclave(platform)
			if err := uaKeys.Provision(as, e, proxy.UAIdentity); err != nil {
				return err
			}
			cfg.Enclave = e
		} else {
			opts := proxy.IAOptions{DisableItemPseudonymization: o.noItemPseudo}
			if o.cache {
				c := reccache.New(reccache.Config{TTL: o.cacheTTL, MaxPages: o.cacheEPCPages})
				opts.Cache = c
				cfg.RecCache = c
			}
			e := proxy.NewIAEnclave(platform, opts)
			if err := iaKeys.Provision(as, e, proxy.IAIdentityFor(opts)); err != nil {
				return err
			}
			cfg.Enclave = e
		}
	}

	layer, err := proxy.New(cfg)
	if err != nil {
		return err
	}
	defer layer.Close()
	layer.SetLogger(logger.With("node", o.role))

	var app http.Handler = layer
	if o.faultSpec != "" {
		rules, err := faults.ParseSpec(o.faultSpec)
		if err != nil {
			return fmt.Errorf("-inject-fault: %w", err)
		}
		inj := faults.NewInjector(o.faultSeed, rules...)
		defer inj.Close()
		// Only application traffic is injected; /metrics and /healthz
		// stay honest so breakers and operators see the real state.
		app = inj.Middleware(app)
		logger.Info("fault injection armed", "spec", o.faultSpec)
	}

	reg := metrics.NewRegistry()
	layer.RegisterMetrics(reg, o.role)
	metrics.RegisterBuildInfo(reg)
	metrics.RegisterRuntimeMetrics(reg)
	routes := make(map[string]http.Handler)
	var auditor *audit.Auditor
	if o.auditSLO {
		auditor = audit.New(audit.Config{TargetS: o.shuffle, Objective: o.auditObjective})
		auditor.SetLogger(logger.With("node", o.role))
		auditor.SetKeyBaseline(strings.ToUpper(o.role))
		if br := layer.Breaker(); br != nil {
			auditor.AddCheck("next-hop breaker open", func() bool { return br.State() != 0 })
		}
		if e := layer.Enclave(); e != nil {
			auditor.AddViolationCheck("enclave compromised", e.Compromised)
		}
		if c := layer.RecCache(); c != nil {
			auditor.RegisterCacheCheck(o.role, c)
		}
		auditor.RegisterMetrics(reg)
		routes[audit.PrivacyPath] = auditor.Handler()
	}
	var eval *perfslo.Evaluator
	if o.perfSLO {
		eval = perfslo.New(perfslo.Config{})
		eval.SetLogger(logger.With("node", o.role))
		addPerfObjectives(eval, layer, o)
		if o.profileDir != "" {
			source := ""
			if o.debugAddr != "" {
				source = "http://" + o.debugAddr
				if strings.HasPrefix(o.debugAddr, ":") {
					source = "http://localhost" + o.debugAddr
				}
			}
			harvester, err := obsprof.New(obsprof.Config{
				Dir:    o.profileDir,
				Source: source,
				Logger: logger.With("node", o.role),
			})
			if err != nil {
				return err
			}
			defer harvester.Wait()
			ev := eval
			eval.OnTransition = func(from, to perfslo.State, reason string) {
				if to == perfslo.StateOK {
					return
				}
				harvester.Trigger(reason, newestExemplar(ev), from.String(), to.String())
			}
			logger.Info("profile capture armed", "dir", o.profileDir)
		}
		// After every AddObjective, so the per-objective families exist.
		eval.RegisterMetrics(reg)
		routes[perfslo.PerfPath] = eval.Handler()
	}
	// Telemetry emitter toward pprox-ops: one snapshot per shuffle epoch,
	// heartbeat-driven when idle. Created before the epoch observer so
	// epochs reach it from the first flush.
	var emitter *telemetry.Emitter
	if o.opsAddr != "" {
		pusher, err := telemetry.NewClient(&net.Dialer{Timeout: 10 * time.Second}, o.opsAddr)
		if err != nil {
			return err
		}
		node := o.node
		if node == "" {
			node = o.role
		}
		interval := o.telemetryEvery
		if interval <= 0 {
			interval = o.shuffleTimeout
			if interval <= 0 {
				interval = 250 * time.Millisecond
			}
		}
		ecfg := telemetry.EmitterConfig{
			Node:     node,
			Role:     o.role,
			Registry: reg,
			Pusher:   pusher,
			Interval: interval,
			Logger:   logger.With("node", node),
		}
		if auditor != nil {
			a := auditor
			ecfg.AuditState = func() string { return a.State().String() }
		}
		if eval != nil {
			ev := eval
			ecfg.PerfState = func() string { return ev.State().String() }
		}
		if emitter, err = telemetry.NewEmitter(ecfg); err != nil {
			return err
		}
		logger.Info("telemetry streaming", "ops", o.opsAddr, "node", node, "heartbeat", interval.String())
	}
	if auditor != nil || eval != nil || emitter != nil {
		var fallbackEpoch atomic.Uint64
		layer.SetEpochObserver(func(batch int) {
			if auditor != nil {
				auditor.ObserveEpoch(o.role, batch)
			}
			if eval != nil {
				var epoch uint64
				if tr := layer.Tracer(); tr != nil {
					epoch = tr.Epoch()
				} else {
					epoch = fallbackEpoch.Add(1) - 1
				}
				eval.Sample(o.role, epoch)
			}
			if emitter != nil {
				emitter.ObserveEpoch(batch)
			}
		})
	}
	if len(routes) == 0 {
		routes = nil
	}
	handler := metrics.MuxRoutes(reg, layer.Health, routes, app)

	if o.traceLog != "" {
		f, err := os.OpenFile(o.traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		layer.SetTracer(trace.New(o.role, trace.WriterSink(f), nil))
		if o.shuffle <= 0 {
			// Without a shuffler nothing flushes the trace buffer, so run
			// the epochs on the flush timer instead. Batching still hides
			// per-request timing, but only shuffling gives the 1/S bound.
			stopEpochs := make(chan struct{})
			defer close(stopEpochs)
			go func() {
				ticker := time.NewTicker(o.shuffleTimeout)
				defer ticker.Stop()
				for {
					select {
					case <-ticker.C:
						layer.Tracer().AdvanceEpoch()
					case <-stopEpochs:
						return
					}
				}
			}()
		}
	}

	stopDebug := func() error { return nil }
	if o.debugAddr != "" {
		stopDebug, err = metrics.ServeDebug(o.debugAddr)
		if err != nil {
			return err
		}
		// Idempotent: the SIGTERM path below drains it first; this only
		// covers error returns between here and there.
		defer stopDebug()
		logger.Info("pprof serving", "addr", o.debugAddr)
	}

	l, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}

	var shutdown func() error
	if o.useEventloop {
		srv := &eventloop.Server{Handler: handler, Workers: o.workers}
		serveDone := make(chan error, 1)
		go func() { serveDone <- srv.Serve(l) }()
		shutdown = func() error {
			err := srv.Close(l)
			<-serveDone
			return err
		}
	} else if o.hopwireOn {
		shutdown = hopwire.ServeHTTPAndFrames(l, handler)
	} else {
		shutdown = transport.Serve(l, handler)
	}
	mode := "net/http"
	switch {
	case o.useEventloop:
		mode = "eventloop"
	case o.hopwireOn:
		mode = "hopwire+net/http"
	}
	logger.Info("layer serving",
		"role", o.role, "listen", l.Addr().String(), "next", o.next,
		"shuffle", o.shuffle, "workers", o.workers, "mode", mode,
		"batch", o.batch && r == proxy.RoleUA, "audit", o.auditSLO)

	// Fleet membership: register with the route registry once the
	// listener is up, heartbeat until shutdown, and leave through the
	// §4j drain protocol on SIGTERM.
	var agent *fleet.Agent
	if o.fleetURL != "" {
		service := o.fleetService
		if service == "" {
			service = o.role
		}
		advertise := o.advertise
		if advertise == "" {
			advertise = l.Addr().String()
		}
		base := o.fleetURL
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		lg := logger.With("node", o.role)
		agent, err = fleet.NewAgent(fleet.AgentConfig{
			BaseURL: strings.TrimRight(base, "/"),
			Service: service,
			Addr:    advertise,
			Logger:  func(format string, args ...any) { lg.Warn(fmt.Sprintf(format, args...)) },
		})
		if err != nil {
			return err
		}
		regCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err = agent.Start(regCtx)
		cancel()
		if err != nil {
			return fmt.Errorf("fleet registration: %w", err)
		}
		logger.Info("fleet registered", "registry", base, "service", service, "advertise", advertise)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	served, failed := layer.Stats()
	retried, failFast := layer.RetryStats()
	logger.Info("shutting down",
		"served", served, "failed", failed, "retries", retried, "fail_fast", failFast)
	// Drain order: the fleet drain runs first (routing stops, in-flight
	// work finishes, the final shuffle epoch leaves whole, we deregister),
	// then the final telemetry snapshot flushes while this process's
	// listener is still up (the collector is a separate process, but a
	// shared shutdown sweep should see the last epoch's counters either
	// way), then the listeners close.
	if agent != nil {
		drainFleet(agent, layer, o, logger)
	}
	if emitter != nil {
		if err := emitter.Close(); err != nil {
			logger.Warn("final telemetry flush failed", "error", err.Error())
		}
	}
	if err := stopDebug(); err != nil {
		logger.Warn("debug server shutdown", "error", err.Error())
	}
	return shutdown()
}

// drainFleet runs the §4j scale-down protocol for a SIGTERM'd instance:
// the registry stops routing to us first, then the layer soft-drains —
// in-flight requests finish and the final shuffle epoch leaves WHOLE via
// the shuffler's own flush, never a forced sub-S release — and only then
// do we deregister. A drain that outlives the timeout hard-refuses
// stragglers so shutdown stays bounded.
func drainFleet(agent *fleet.Agent, layer *proxy.Layer, o options, logger *slog.Logger) {
	timeout := o.drainTimeout
	if timeout <= 0 {
		timeout = 2*o.shuffleTimeout + 5*time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := agent.Drain(ctx); err != nil {
		logger.Warn("fleet drain announcement failed", "error", err.Error())
	}
	layer.BeginDrain()
	if err := layer.AwaitDrained(ctx); err != nil {
		logger.Warn("graceful drain timed out; refusing stragglers", "error", err.Error())
		layer.RefuseNew()
		grace, cancelGrace := context.WithTimeout(context.Background(), time.Second)
		_ = layer.AwaitDrained(grace)
		cancelGrace()
	}
	agent.Stop()
	dctx, cancelDereg := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelDereg()
	if err := agent.Deregister(dctx); err != nil {
		logger.Warn("fleet deregister failed; staleness pruning will collect the entry", "error", err.Error())
	}
	rep := layer.DrainReport()
	logger.Info("fleet drain complete", "clean", rep.Clean, "sheds", rep.Sheds)
}

// addPerfObjectives installs the per-stage latency objectives this
// instance can actually observe, with the same defaults the in-process
// cluster uses: generous multiples of the configured shuffle flush and
// hop costs, meant to flag regressions rather than tune capacity.
func addPerfObjectives(eval *perfslo.Evaluator, layer *proxy.Layer, o options) {
	flush := o.shuffleTimeout
	if flush <= 0 {
		flush = 250 * time.Millisecond
	}
	thresholds := map[string]time.Duration{
		proxy.StageServe:        2*flush + 500*time.Millisecond,
		proxy.StageShuffleWait:  2 * flush,
		proxy.StageEcallDecrypt: 25 * time.Millisecond,
		proxy.StageForward:      250 * time.Millisecond,
	}
	stages := []string{proxy.StageServe}
	if o.shuffle > 0 {
		stages = append(stages, proxy.StageShuffleWait)
	}
	if !o.passthrough {
		stages = append(stages, proxy.StageEcallDecrypt)
	}
	if o.role == "ia" {
		stages = append(stages, proxy.StageForward)
	}
	for _, stage := range stages {
		if h := layer.StageHistogram(stage); h != nil {
			eval.AddObjective(stage, o.role, h, o.perfQuantile, thresholds[stage].Seconds())
		}
	}
}

// newestExemplar returns the most recent breach epoch across the
// evaluator's objectives, so a triggered profile capture is labeled with
// the shuffle epoch that tripped it.
func newestExemplar(eval *perfslo.Evaluator) uint64 {
	var newest uint64
	for _, obj := range eval.Report().Objectives {
		if n := len(obj.ExemplarEpochs); n > 0 && obj.ExemplarEpochs[n-1] >= newest {
			newest = obj.ExemplarEpochs[n-1]
		}
	}
	return newest
}
