// Command pprox-proxy runs one PProx proxy layer instance over TCP:
//
//	pprox-proxy -role ua -listen :8081 -next http://localhost:8082 -keys keys.json -shuffle 10
//	pprox-proxy -role ia -listen :8082 -next http://localhost:8080 -keys keys.json -shuffle 10
//
// The process launches the layer's (simulated) SGX enclave, runs the
// attested provisioning handshake with the key file, and serves the LRS
// REST API. Horizontal scaling = more processes behind a load balancer,
// each provisioned with the same key file (§5).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pprox/internal/enclave"
	"pprox/internal/eventloop"
	"pprox/internal/metrics"
	"pprox/internal/proxy"
	"pprox/internal/trace"
	"pprox/internal/transport"
)

func main() {
	role := flag.String("role", "", "layer role: ua or ia")
	listen := flag.String("listen", ":8081", "listen address")
	next := flag.String("next", "", "next hop base URL (IA balancer for ua, LRS for ia)")
	keysPath := flag.String("keys", "", "key file from pprox-keygen (omit with -passthrough)")
	shuffle := flag.Int("shuffle", 0, "shuffle buffer size S (0 = off)")
	shuffleTimeout := flag.Duration("shuffle-timeout", 500*time.Millisecond, "shuffle flush timer")
	workers := flag.Int("workers", 2, "data-processing pool size")
	noItemPseudo := flag.Bool("no-item-pseudonyms", false, "send item identifiers to the LRS in the clear (§6.3)")
	passthrough := flag.Bool("passthrough", false, "forward without cryptography (baseline m1)")
	useEventloop := flag.Bool("eventloop", false, "serve with the §5 acceptor+queue+worker-pool architecture instead of net/http")
	debugAddr := flag.String("debug-addr", "", "pprof listen address, e.g. localhost:6060 (off when empty)")
	traceLog := flag.String("trace-log", "", "append privacy-safe trace records (JSON lines) to this file")
	flag.Parse()

	if err := run(*role, *listen, *next, *keysPath, *shuffle, *shuffleTimeout, *workers, *noItemPseudo, *passthrough, *useEventloop, *debugAddr, *traceLog); err != nil {
		fmt.Fprintln(os.Stderr, "pprox-proxy:", err)
		os.Exit(1)
	}
}

func run(role, listen, next, keysPath string, shuffle int, shuffleTimeout time.Duration, workers int, noItemPseudo, passthrough, useEventloop bool, debugAddr, traceLog string) error {
	var r proxy.Role
	switch role {
	case "ua":
		r = proxy.RoleUA
	case "ia":
		r = proxy.RoleIA
	default:
		return fmt.Errorf("role must be ua or ia, got %q", role)
	}
	if next == "" {
		return fmt.Errorf("-next is required")
	}

	cfg := proxy.Config{
		Role:           r,
		Next:           next,
		HTTPClient:     &http.Client{Timeout: 30 * time.Second},
		ShuffleSize:    shuffle,
		ShuffleTimeout: shuffleTimeout,
		Workers:        workers,
		PassThrough:    passthrough,
	}

	if !passthrough {
		if keysPath == "" {
			return fmt.Errorf("-keys is required unless -passthrough")
		}
		data, err := os.ReadFile(keysPath)
		if err != nil {
			return err
		}
		uaKeys, iaKeys, err := proxy.UnmarshalKeyFile(data)
		if err != nil {
			return err
		}
		// Local platform + attestation trust anchor: in a production
		// deployment the quote verification happens remotely at the
		// RaaS client; see DESIGN.md §1 for the SGX substitution.
		as, err := enclave.NewAttestationService()
		if err != nil {
			return err
		}
		platform := enclave.NewPlatform(as)
		if r == proxy.RoleUA {
			e := proxy.NewUAEnclave(platform)
			if err := uaKeys.Provision(as, e, proxy.UAIdentity); err != nil {
				return err
			}
			cfg.Enclave = e
		} else {
			opts := proxy.IAOptions{DisableItemPseudonymization: noItemPseudo}
			e := proxy.NewIAEnclave(platform, opts)
			if err := iaKeys.Provision(as, e, proxy.IAIdentityFor(opts)); err != nil {
				return err
			}
			cfg.Enclave = e
		}
	}

	layer, err := proxy.New(cfg)
	if err != nil {
		return err
	}
	defer layer.Close()

	reg := metrics.NewRegistry()
	layer.RegisterMetrics(reg, role)
	handler := metrics.Mux(reg, layer.Health, layer)

	if traceLog != "" {
		f, err := os.OpenFile(traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		layer.SetTracer(trace.New(role, trace.WriterSink(f), nil))
		if shuffle <= 0 {
			// Without a shuffler nothing flushes the trace buffer, so run
			// the epochs on the flush timer instead. Batching still hides
			// per-request timing, but only shuffling gives the 1/S bound.
			stopEpochs := make(chan struct{})
			defer close(stopEpochs)
			go func() {
				ticker := time.NewTicker(shuffleTimeout)
				defer ticker.Stop()
				for {
					select {
					case <-ticker.C:
						layer.Tracer().AdvanceEpoch()
					case <-stopEpochs:
						return
					}
				}
			}()
		}
	}

	if debugAddr != "" {
		stopDebug, err := metrics.ServeDebug(debugAddr)
		if err != nil {
			return err
		}
		defer stopDebug()
		fmt.Printf("pprox-proxy: pprof on http://%s/debug/pprof/\n", debugAddr)
	}

	l, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}

	var shutdown func() error
	if useEventloop {
		srv := &eventloop.Server{Handler: handler, Workers: workers}
		serveDone := make(chan error, 1)
		go func() { serveDone <- srv.Serve(l) }()
		shutdown = func() error {
			err := srv.Close(l)
			<-serveDone
			return err
		}
	} else {
		shutdown = transport.Serve(l, handler)
	}
	mode := "net/http"
	if useEventloop {
		mode = "eventloop"
	}
	fmt.Printf("pprox-proxy: %s layer on %s → %s (S=%d, workers=%d, %s, /metrics exposed)\n",
		role, l.Addr(), next, shuffle, workers, mode)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	served, failed := layer.Stats()
	fmt.Printf("pprox-proxy: shutting down (served=%d failed=%d)\n", served, failed)
	return shutdown()
}
